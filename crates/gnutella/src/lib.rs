#![forbid(unsafe_code)]
//! # pier-gnutella — the unstructured filesharing network
//!
//! A faithful simulation of the Gnutella 0.6 network as the paper measured
//! it (§4): two-tier topology (LimeWire-style ultrapeers with 30 leaves /
//! 32 ultrapeer neighbors, or the older 75 / 6 profile), TTL-scoped query
//! flooding with GUID-based duplicate suppression and reverse-path
//! QueryHit routing, QRP Bloom-filter last-hop leaf forwarding, and
//! **dynamic querying** — the paced per-neighbor re-probing whose
//! multi-second intervals produce the paper's 73-second first-result
//! latency for rare items (Fig. 7).
//!
//! The crate also ships the measurement apparatus the paper built:
//! a parallel topology [`Crawler`] (§4.1) and the flood-overhead analysis
//! of Figure 8 ([`floodstats`]).
//!
//! Protocol logic lives in I/O-free cores ([`UltrapeerCore`], [`LeafCore`])
//! driven through [`GnutellaNet`], so the hybrid crate can embed a Gnutella
//! ultrapeer and a DHT/PIER stack in one node — the paper's hybrid
//! ultrapeer (§7).

mod bloom;
pub mod classes;
mod config;
pub mod crawl;
mod files;
pub mod floodstats;
mod leaf;
mod msg;
mod net;
mod node;
pub mod qrp_catalog;
pub mod topology;
mod ultrapeer;

pub use bloom::{QrpFilter, QrpProbe};
pub use config::{LeafConfig, UltrapeerConfig};
pub use crawl::{CrawlGraph, Crawler};
pub use files::{tokenize, FileId, FileMeta, FileStore, ShareCatalog};
pub use leaf::{LeafCore, LeafSearch};
pub use msg::{GnutellaMsg, Guid, Hit, HEADER_BYTES};
pub use net::{CtxGnutellaNet, GnutellaNet};
pub use node::{LeafNode, UltrapeerNode, UP_TICK};
pub use pier_vocab::{TermId, Terms};
pub use topology::{spawn, spawn_stores, GnutellaHandles, Topology, TopologyConfig};
pub use ultrapeer::{QueryOrigin, QueryRecord, SnoopEvent, UltrapeerCore};
