//! The network interface Gnutella cores are written against, mirroring
//! `pier_dht::DhtNet` so both protocol stacks can share one actor.

use crate::msg::GnutellaMsg;
use pier_netsim::{Ctx, MetricClass, NodeId, SimRng, SimTime};

/// How Gnutella protocol cores reach the network.
pub trait GnutellaNet {
    fn now(&self) -> SimTime;
    fn self_node(&self) -> NodeId;
    fn rng(&mut self) -> &mut SimRng;
    /// Send a protocol message; implementations account `msg.wire_size()`.
    fn send(&mut self, dst: NodeId, msg: GnutellaMsg);
    fn count(&mut self, class: MetricClass, n: u64);
    fn observe(&mut self, class: MetricClass, value: f64);
}

/// Adapter for actors whose simulation message type is exactly
/// [`GnutellaMsg`].
pub struct CtxGnutellaNet<'a> {
    pub ctx: &'a mut dyn Ctx<GnutellaMsg>,
}

impl GnutellaNet for CtxGnutellaNet<'_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn self_node(&self) -> NodeId {
        self.ctx.self_id()
    }
    fn rng(&mut self) -> &mut SimRng {
        self.ctx.rng()
    }
    fn send(&mut self, dst: NodeId, msg: GnutellaMsg) {
        let size = msg.wire_size();
        let class = msg.class();
        self.ctx.send(dst, msg, size, class);
    }
    fn count(&mut self, class: MetricClass, n: u64) {
        self.ctx.count(class, n);
    }
    fn observe(&mut self, class: MetricClass, value: f64) {
        self.ctx.observe(class, value);
    }
}
