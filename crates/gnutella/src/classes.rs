//! Interned metric classes for the Gnutella layer, registered once per
//! process (see `pier_netsim::metric_classes!`). Wire-message classes are
//! resolved by [`crate::GnutellaMsg::class`]; the rest label
//! protocol-level counters and histograms.

pier_netsim::metric_classes! {
    // Wire messages.
    pub QUERY = "gnutella.query";
    pub QUERY_HIT = "gnutella.query_hit";
    pub CRAWL_PING = "gnutella.crawl_ping";
    pub CRAWL_PONG = "gnutella.crawl_pong";
    pub QRP = "gnutella.qrp";
    pub LEAF_QUERY = "gnutella.leaf_query";
    pub LEAF_RESULTS = "gnutella.leaf_results";
    pub LEAF_FORWARD = "gnutella.leaf_forward";
    pub LEAF_HITS = "gnutella.leaf_hits";
    pub BROWSE = "gnutella.browse";
    pub BROWSE_REPLY = "gnutella.browse_reply";

    // Protocol-level counters.
    pub QUERIES_STARTED = "gnutella.queries_started";
    pub QUERIES_FINISHED = "gnutella.queries_finished";
    pub DUPLICATE_QUERY = "gnutella.duplicate_query";
    pub LEAF_FORWARDS = "gnutella.leaf_forwards";
    pub LEAF_MATCHES = "gnutella.leaf_matches";
    pub ORPHAN_HITS = "gnutella.orphan_hits";
    pub UNEXPECTED_MSG = "gnutella.unexpected_msg";

    // Histograms.
    pub FIRST_HIT_LATENCY_S = "gnutella.first_hit_latency_s";
    pub RESULTS_PER_QUERY = "gnutella.results_per_query";
    pub CRAWL_DURATION_S = "crawl.duration_s";
}
