//! Query Routing Protocol (QRP) Bloom filters.
//!
//! LimeWire leaves publish a Bloom filter of their filename keywords to
//! their ultrapeers; ultrapeers use it for *last-hop* filtering — a query is
//! forwarded to a leaf only if every query term hits the leaf's filter
//! (footnote 2 of the paper). False positives cause harmless extra
//! forwards; false negatives cannot occur.
//!
//! Terms are interned: the Kirsch–Mitzenmacher double-hash pair of each
//! term is computed once at intern time and cached in the term table (and
//! in every [`Terms`] payload), so the flood hot path never re-hashes
//! string bytes. The cached pair is produced by the exact historical
//! per-byte mix, so filters are bit-identical to the string-hashing ones.

use pier_vocab::{intern, TermId, Terms};
use serde::{Deserialize, Serialize};

/// A fixed-size Bloom filter over lowercase terms.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QrpFilter {
    bits: Vec<u64>,
    /// Number of bits (power of two not required).
    m: u32,
    /// Hash functions per term.
    k: u32,
}

impl pier_netsim::HeapSize for QrpFilter {
    fn heap_bytes(&self) -> usize {
        self.bits.capacity() * size_of::<u64>()
    }
}

impl QrpFilter {
    /// Standard LimeWire table size is 65,536 slots; two hashes keep the
    /// false-positive rate low at leaf-share sizes (hundreds of keywords).
    pub const DEFAULT_BITS: u32 = 65_536;
    pub const DEFAULT_HASHES: u32 = 2;

    pub fn new(m: u32, k: u32) -> Self {
        assert!(m >= 64, "filter too small");
        assert!(k >= 1);
        QrpFilter { bits: vec![0; m.div_ceil(64) as usize], m, k }
    }

    pub fn with_defaults() -> Self {
        QrpFilter::new(Self::DEFAULT_BITS, Self::DEFAULT_HASHES)
    }

    /// The k bit positions of a term's cached double-hash pair.
    fn positions(&self, (h1, h2): (u64, u64)) -> impl Iterator<Item = u32> + '_ {
        let m = self.m as u64;
        (0..self.k).map(move |i| ((h1.wrapping_add(h2.wrapping_mul(i as u64))) % m) as u32)
    }

    /// Insert an interned term.
    pub fn insert_id(&mut self, id: TermId) {
        self.insert_hashes(pier_vocab::qrp_hashes(id));
    }

    /// Insert a batch of interned terms with one table read.
    pub fn insert_ids(&mut self, ids: &[TermId]) {
        for h in pier_vocab::qrp_hashes_of(ids) {
            self.insert_hashes(h);
        }
    }

    fn insert_hashes(&mut self, h: (u64, u64)) {
        let positions: Vec<u32> = self.positions(h).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
    }

    /// Insert a term by text (assumed already lowercase).
    pub fn insert(&mut self, term: &str) {
        self.insert_id(intern(term));
    }

    /// Might this filter contain the term with this cached hash pair?
    pub fn contains_hashes(&self, h: (u64, u64)) -> bool {
        self.positions(h).all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0)
    }

    /// Might this filter contain this interned term?
    pub fn contains_id(&self, id: TermId) -> bool {
        self.contains_hashes(pier_vocab::qrp_hashes(id))
    }

    /// Might this filter contain `term`?
    pub fn contains(&self, term: &str) -> bool {
        self.contains_id(intern(term))
    }

    /// Would a query (all of `terms`) route to this filter's owner? Uses
    /// the hash pairs cached in the payload — no table access, no hashing.
    pub fn matches_all(&self, terms: &Terms) -> bool {
        !terms.is_empty() && terms.qrp_hashes().iter().all(|&h| self.contains_hashes(h))
    }

    /// Wire size when published leaf→ultrapeer. Real QRP sends a compressed
    /// patch; raw table bytes are a conservative upper bound and what we
    /// account.
    pub fn wire_size(&self) -> usize {
        (self.m as usize).div_ceil(8)
    }

    /// Fraction of set bits (diagnostics / false-positive estimation).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = QrpFilter::with_defaults();
        let terms: Vec<String> = (0..500).map(|i| format!("term{i}")).collect();
        for t in &terms {
            f.insert(t);
        }
        for t in &terms {
            assert!(f.contains(t), "false negative on {t}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = QrpFilter::with_defaults();
        for i in 0..300 {
            f.insert(&format!("present{i}"));
        }
        let fp = (0..10_000).filter(|i| f.contains(&format!("absent{i}"))).count();
        let rate = fp as f64 / 10_000.0;
        // 300 keywords in 65536 bits with k=2: expected fp rate well below 1%.
        assert!(rate < 0.01, "false positive rate {rate}");
    }

    #[test]
    fn matches_all_semantics() {
        let mut f = QrpFilter::with_defaults();
        f.insert("led");
        f.insert("zeppelin");
        assert!(f.matches_all(&Terms::from_text("led zeppelin")));
        assert!(f.matches_all(&Terms::from_text("led")));
        assert!(!f.matches_all(&Terms::from_text("led floyd")));
        assert!(!f.matches_all(&Terms::from_text("")), "empty query routes nowhere");
    }

    #[test]
    fn id_and_string_paths_agree() {
        // The cached-hash path must produce bit-identical filters to the
        // historical string-hashing path (same bits, same answers).
        let mut by_str = QrpFilter::new(1024, 3);
        let mut by_id = QrpFilter::new(1024, 3);
        let terms = ["led", "zeppelin", "stairway", "07"];
        for t in &terms {
            by_str.insert(t);
        }
        let ids: Vec<TermId> = terms.iter().map(|t| intern(t)).collect();
        by_id.insert_ids(&ids);
        assert_eq!(by_id, by_str, "cached hashes must set the exact same bits");
        for (t, id) in terms.iter().zip(&ids) {
            assert!(by_id.contains(t));
            assert!(by_str.contains_id(*id));
        }
    }

    #[test]
    fn wire_size_matches_table() {
        let f = QrpFilter::with_defaults();
        assert_eq!(f.wire_size(), 8192);
        assert_eq!(QrpFilter::new(100, 2).wire_size(), 13);
    }

    #[test]
    fn fill_ratio_grows() {
        let mut f = QrpFilter::new(1024, 2);
        assert_eq!(f.fill_ratio(), 0.0);
        for i in 0..100 {
            f.insert(&format!("t{i}"));
        }
        let r = f.fill_ratio();
        assert!(r > 0.05 && r < 0.5, "ratio {r}");
    }

    #[test]
    fn serde_roundtrip() {
        let mut f = QrpFilter::new(256, 3);
        f.insert("x");
        let bytes = pier_codec::to_bytes(&f).unwrap();
        let back: QrpFilter = pier_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        assert!(back.contains("x"));
    }
}
