//! Query Routing Protocol (QRP) Bloom filters.
//!
//! LimeWire leaves publish a Bloom filter of their filename keywords to
//! their ultrapeers; ultrapeers use it for *last-hop* filtering — a query is
//! forwarded to a leaf only if every query term hits the leaf's filter
//! (footnote 2 of the paper). False positives cause harmless extra
//! forwards; false negatives cannot occur.

use pier_netsim::split_mix64;
use serde::{Deserialize, Serialize};

/// A fixed-size Bloom filter over lowercase terms.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QrpFilter {
    bits: Vec<u64>,
    /// Number of bits (power of two not required).
    m: u32,
    /// Hash functions per term.
    k: u32,
}

impl QrpFilter {
    /// Standard LimeWire table size is 65,536 slots; two hashes keep the
    /// false-positive rate low at leaf-share sizes (hundreds of keywords).
    pub const DEFAULT_BITS: u32 = 65_536;
    pub const DEFAULT_HASHES: u32 = 2;

    pub fn new(m: u32, k: u32) -> Self {
        assert!(m >= 64, "filter too small");
        assert!(k >= 1);
        QrpFilter { bits: vec![0; m.div_ceil(64) as usize], m, k }
    }

    pub fn with_defaults() -> Self {
        QrpFilter::new(Self::DEFAULT_BITS, Self::DEFAULT_HASHES)
    }

    fn positions(&self, term: &str) -> impl Iterator<Item = u32> + '_ {
        // Derive k positions from two SplitMix64 passes (Kirsch–Mitzenmacher
        // double hashing).
        let mut state = 0xF11E_D00D_u64;
        for b in term.as_bytes() {
            state = state.rotate_left(8) ^ (*b as u64);
            split_mix64(&mut state);
        }
        let h1 = split_mix64(&mut state);
        let h2 = split_mix64(&mut state) | 1;
        let m = self.m as u64;
        (0..self.k).map(move |i| ((h1.wrapping_add(h2.wrapping_mul(i as u64))) % m) as u32)
    }

    /// Insert a term (assumed already lowercase).
    pub fn insert(&mut self, term: &str) {
        let positions: Vec<u32> = self.positions(term).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
    }

    /// Might this filter contain `term`?
    pub fn contains(&self, term: &str) -> bool {
        self.positions(term).all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0)
    }

    /// Would a query (all of `terms`) route to this filter's owner?
    pub fn matches_all(&self, terms: &[String]) -> bool {
        !terms.is_empty() && terms.iter().all(|t| self.contains(t))
    }

    /// Wire size when published leaf→ultrapeer. Real QRP sends a compressed
    /// patch; raw table bytes are a conservative upper bound and what we
    /// account.
    pub fn wire_size(&self) -> usize {
        (self.m as usize).div_ceil(8)
    }

    /// Fraction of set bits (diagnostics / false-positive estimation).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = QrpFilter::with_defaults();
        let terms: Vec<String> = (0..500).map(|i| format!("term{i}")).collect();
        for t in &terms {
            f.insert(t);
        }
        for t in &terms {
            assert!(f.contains(t), "false negative on {t}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = QrpFilter::with_defaults();
        for i in 0..300 {
            f.insert(&format!("present{i}"));
        }
        let fp = (0..10_000).filter(|i| f.contains(&format!("absent{i}"))).count();
        let rate = fp as f64 / 10_000.0;
        // 300 keywords in 65536 bits with k=2: expected fp rate well below 1%.
        assert!(rate < 0.01, "false positive rate {rate}");
    }

    #[test]
    fn matches_all_semantics() {
        let mut f = QrpFilter::with_defaults();
        f.insert("led");
        f.insert("zeppelin");
        let q = |s: &str| s.split(' ').map(String::from).collect::<Vec<_>>();
        assert!(f.matches_all(&q("led zeppelin")));
        assert!(f.matches_all(&q("led")));
        assert!(!f.matches_all(&q("led floyd")));
        assert!(!f.matches_all(&[]), "empty query routes nowhere");
    }

    #[test]
    fn wire_size_matches_table() {
        let f = QrpFilter::with_defaults();
        assert_eq!(f.wire_size(), 8192);
        assert_eq!(QrpFilter::new(100, 2).wire_size(), 13);
    }

    #[test]
    fn fill_ratio_grows() {
        let mut f = QrpFilter::new(1024, 2);
        assert_eq!(f.fill_ratio(), 0.0);
        for i in 0..100 {
            f.insert(&format!("t{i}"));
        }
        let r = f.fill_ratio();
        assert!(r > 0.05 && r < 0.5, "ratio {r}");
    }

    #[test]
    fn serde_roundtrip() {
        let mut f = QrpFilter::new(256, 3);
        f.insert("x");
        let bytes = pier_codec::to_bytes(&f).unwrap();
        let back: QrpFilter = pier_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        assert!(back.contains("x"));
    }
}
