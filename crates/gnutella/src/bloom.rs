//! Query Routing Protocol (QRP) Bloom filters.
//!
//! LimeWire leaves publish a Bloom filter of their filename keywords to
//! their ultrapeers; ultrapeers use it for *last-hop* filtering — a query is
//! forwarded to a leaf only if every query term hits the leaf's filter
//! (footnote 2 of the paper). False positives cause harmless extra
//! forwards; false negatives cannot occur.
//!
//! Terms are interned: the Kirsch–Mitzenmacher double-hash pair of each
//! term is computed once at intern time and cached in the term table (and
//! in every [`Terms`] payload), so the flood hot path never re-hashes
//! string bytes. The cached pair is produced by the exact historical
//! per-byte mix, so filters are bit-identical to the string-hashing ones.
//!
//! A leaf share is a few hundred keywords against a 65,536-slot table, so
//! over 99% of the bits are zero. The filter is therefore two-mode: it starts
//! [`Repr::Sparse`] — a sorted slice of set bit positions, binary-searched
//! on probe — and promotes itself to the classic [`Repr::Dense`]
//! bit table once the position count crosses [`QrpFilter::sparse_limit`]
//! (the break-even point where 4-byte positions would cost more than the
//! `m/8`-byte table). The two representations are semantically identical:
//! same positions set, same membership answers, same wire size. Equality,
//! hashing, and the codec all speak the canonical position set, never the
//! representation, so promotion can never perturb a determinism pin.
//!
//! Every probe goes through an inline 4096-block summary bitmap first
//! (`QrpFilter::summary`): one 512-byte-resident load rejects probes to
//! clear blocks before any repr dispatch, table access, or binary search —
//! the O(1) fast path of the miss-dominated last-hop loop.

use pier_vocab::{intern, TermId, Terms};
use serde::{Deserialize, Serialize};

/// Words in a filter's inline block-summary bitmap. 64 words cover 4,096
/// blocks of 16 bits each over the default 65,536-bit table: at leaf-share
/// densities (hundreds of set bits) ~96% of the blocks are clear, so the
/// summary settles almost every miss probe with a single 512-byte-resident
/// load.
const SUMMARY_WORDS: usize = 64;
/// Blocks the summary covers: bit `b` is set iff some position lands in
/// block `b` (blocks alias mod 4096 for tables above 65,536 bits).
const SUMMARY_BLOCKS: u32 = (SUMMARY_WORDS * 64) as u32;
/// log2 of the bit positions per summary block (16-bit blocks).
const SUMMARY_SHIFT: u32 = 4;

/// Set-bit storage. `Sparse` holds the ascending, duplicate-free bit
/// positions; `Dense` is the flat bit table. Promotion is monotone:
/// inserts may turn `Sparse` into `Dense`, never the reverse.
#[derive(Clone, Debug)]
enum Repr {
    Sparse(Box<[u32]>),
    Dense(Vec<u64>),
}

/// The summary bitmap of a sorted position set.
fn summary_of(positions: &[u32]) -> [u64; SUMMARY_WORDS] {
    let mut s = [0u64; SUMMARY_WORDS];
    for &p in positions {
        let b = (p >> SUMMARY_SHIFT) % SUMMARY_BLOCKS;
        s[(b >> 6) as usize] |= 1 << (b & 63);
    }
    s
}

/// A fixed-size Bloom filter over lowercase terms.
#[derive(Clone, Debug)]
pub struct QrpFilter {
    /// First-level block summary: bit `b` is set iff some position lands
    /// in 16-bit block `b mod 4096`. A probe whose block bit is clear is
    /// rejected with this one load — no repr dispatch, no table or
    /// position-slice access. At leaf-share densities (hundreds of set
    /// bits in 65,536) the summary is ~96% clear, so the miss-dominated
    /// last-hop path almost never leaves these 512 bytes. Derived state:
    /// maintained on every insert, never serialized or compared.
    summary: [u64; SUMMARY_WORDS],
    repr: Repr,
    /// Number of bits (power of two not required).
    m: u32,
    /// Hash functions per term.
    k: u32,
}

impl pier_netsim::HeapSize for QrpFilter {
    fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Sparse(pos) => pos.len() * size_of::<u32>(),
            Repr::Dense(bits) => bits.capacity() * size_of::<u64>(),
        }
    }
}

/// Bit position `i` of a term's cached double-hash pair in an `m`-bit
/// table (Kirsch–Mitzenmacher: `h1 + i·h2 mod m`).
#[inline]
fn bit_position(m: u32, (h1, h2): (u64, u64), i: u32) -> u32 {
    (h1.wrapping_add(h2.wrapping_mul(i as u64)) % m as u64) as u32
}

/// Ascending set-bit positions of a dense table.
fn dense_positions(bits: &[u64]) -> impl Iterator<Item = u32> + '_ {
    bits.iter().enumerate().flat_map(|(w, &word)| {
        (0..64u32).filter(move |b| word >> b & 1 == 1).map(move |b| w as u32 * 64 + b)
    })
}

impl QrpFilter {
    /// Standard LimeWire table size is 65,536 slots; two hashes keep the
    /// false-positive rate low at leaf-share sizes (hundreds of keywords).
    pub const DEFAULT_BITS: u32 = 65_536;
    pub const DEFAULT_HASHES: u32 = 2;

    pub fn new(m: u32, k: u32) -> Self {
        assert!(m >= 64, "filter too small");
        assert!(k >= 1);
        QrpFilter { summary: [0; SUMMARY_WORDS], repr: Repr::Sparse(Box::default()), m, k }
    }

    pub fn with_defaults() -> Self {
        QrpFilter::new(Self::DEFAULT_BITS, Self::DEFAULT_HASHES)
    }

    /// Positions a sparse table may hold before promoting to dense: at
    /// 4 bytes per position, `m/32` positions cost exactly the dense
    /// table's `m/8` bytes, so sparse storage never exceeds dense.
    pub const fn sparse_limit(m: u32) -> usize {
        (m / 32) as usize
    }

    /// Is the filter still in the sparse position-list representation?
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Force the dense bit-table representation (the pre-sparse layout;
    /// benchmarks use it as the comparison plane). Inserts promote
    /// automatically past [`QrpFilter::sparse_limit`].
    pub fn promote_to_dense(&mut self) {
        if let Repr::Sparse(pos) = &self.repr {
            let mut bits = vec![0u64; self.m.div_ceil(64) as usize];
            for &p in pos.iter() {
                bits[(p / 64) as usize] |= 1 << (p % 64);
            }
            self.repr = Repr::Dense(bits);
        }
    }

    /// Install a sorted duplicate-free position set, promoting when it
    /// crosses the sparse limit.
    fn set_positions(&mut self, positions: Vec<u32>) {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be sorted+deduped"
        );
        self.summary = summary_of(&positions);
        if positions.len() > Self::sparse_limit(self.m) {
            let mut bits = vec![0u64; self.m.div_ceil(64) as usize];
            for p in positions {
                bits[(p / 64) as usize] |= 1 << (p % 64);
            }
            self.repr = Repr::Dense(bits);
        } else {
            self.repr = Repr::Sparse(positions.into_boxed_slice());
        }
    }

    #[inline]
    fn set_bit(&mut self, p: u32) {
        let b = (p >> SUMMARY_SHIFT) % SUMMARY_BLOCKS;
        self.summary[(b >> 6) as usize] |= 1 << (b & 63);
        match &mut self.repr {
            Repr::Dense(bits) => bits[(p / 64) as usize] |= 1 << (p % 64),
            Repr::Sparse(pos) => {
                if let Err(at) = pos.binary_search(&p) {
                    let mut v = Vec::with_capacity(pos.len() + 1);
                    v.extend_from_slice(&pos[..at]);
                    v.push(p);
                    v.extend_from_slice(&pos[at..]);
                    self.set_positions(v);
                }
            }
        }
    }

    #[inline]
    fn test_bit(&self, p: u32) -> bool {
        // Summary first: one load settles ~96% of probes at leaf-share
        // densities, for either representation.
        let b = (p >> SUMMARY_SHIFT) % SUMMARY_BLOCKS;
        if self.summary[(b >> 6) as usize] & (1 << (b & 63)) == 0 {
            return false;
        }
        match &self.repr {
            Repr::Dense(bits) => bits[(p / 64) as usize] & (1 << (p % 64)) != 0,
            Repr::Sparse(pos) => pos.binary_search(&p).is_ok(),
        }
    }

    /// Insert an interned term.
    pub fn insert_id(&mut self, id: TermId) {
        self.insert_hashes(pier_vocab::qrp_hashes(id));
    }

    /// Insert a batch of interned terms with one table read. On a sparse
    /// filter this merges every new position in one sort+dedup instead of
    /// rebuilding the slice per bit — the path every leaf publish takes.
    pub fn insert_ids(&mut self, ids: &[TermId]) {
        let hashes = pier_vocab::qrp_hashes_of(ids);
        let merged = match &self.repr {
            Repr::Dense(_) => None,
            Repr::Sparse(existing) => {
                let mut v = Vec::with_capacity(existing.len() + hashes.len() * self.k as usize);
                v.extend_from_slice(existing);
                for &h in &hashes {
                    for i in 0..self.k {
                        v.push(bit_position(self.m, h, i));
                    }
                }
                v.sort_unstable();
                v.dedup();
                Some(v)
            }
        };
        match merged {
            Some(v) => self.set_positions(v),
            None => {
                for h in hashes {
                    self.insert_hashes(h);
                }
            }
        }
    }

    fn insert_hashes(&mut self, h: (u64, u64)) {
        // One pass: each position is computed and set in place (no
        // temporary position buffer).
        for i in 0..self.k {
            self.set_bit(bit_position(self.m, h, i));
        }
    }

    /// Insert a term by text (assumed already lowercase).
    pub fn insert(&mut self, term: &str) {
        self.insert_id(intern(term));
    }

    /// Might this filter contain the term with this cached hash pair?
    pub fn contains_hashes(&self, h: (u64, u64)) -> bool {
        (0..self.k).all(|i| self.test_bit(bit_position(self.m, h, i)))
    }

    /// Might this filter contain this interned term?
    pub fn contains_id(&self, id: TermId) -> bool {
        self.contains_hashes(pier_vocab::qrp_hashes(id))
    }

    /// Might this filter contain `term`?
    pub fn contains(&self, term: &str) -> bool {
        self.contains_id(intern(term))
    }

    /// Would a query (all of `terms`) route to this filter's owner? Uses
    /// the hash pairs cached in the payload — no table access, no hashing.
    pub fn matches_all(&self, terms: &Terms) -> bool {
        !terms.is_empty() && terms.qrp_hashes().iter().all(|&h| self.contains_hashes(h))
    }

    /// [`QrpFilter::matches_all`] against a precomputed [`QrpProbe`].
    /// Same answer for any filter; the probe just hoists the position
    /// arithmetic out of the per-filter loop.
    pub fn matches_probe(&self, probe: &QrpProbe) -> bool {
        if self.m == probe.m && self.k == probe.k {
            !probe.positions.is_empty() && probe.positions.iter().all(|&p| self.test_bit(p))
        } else {
            // Geometry mismatch (never the case inside one network):
            // recompute positions for this filter's own table.
            !probe.hashes.is_empty() && probe.hashes.iter().all(|&h| self.contains_hashes(h))
        }
    }

    /// Wire size when published leaf→ultrapeer. Real QRP sends a compressed
    /// patch; raw table bytes are a conservative upper bound and what we
    /// account — deliberately representation-independent, so the in-memory
    /// sparse/dense split never shows up in message byte totals.
    pub fn wire_size(&self) -> usize {
        (self.m as usize).div_ceil(8)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        match &self.repr {
            Repr::Sparse(pos) => pos.len() as u32,
            Repr::Dense(bits) => bits.iter().map(|w| w.count_ones()).sum(),
        }
    }

    /// Fraction of set bits (diagnostics / false-positive estimation).
    pub fn fill_ratio(&self) -> f64 {
        self.count_ones() as f64 / self.m as f64
    }

    /// Ascending set-bit positions — the canonical content, independent of
    /// representation.
    fn positions_vec(&self) -> Vec<u32> {
        match &self.repr {
            Repr::Sparse(pos) => pos.to_vec(),
            Repr::Dense(bits) => dense_positions(bits).collect(),
        }
    }

    /// Content hash over `(m, k, set positions)` — what the process-wide
    /// filter catalog interns on. Representation-independent, like `Eq`.
    pub fn content_hash(&self) -> u64 {
        let mut state = (self.m as u64) << 32 | self.k as u64;
        let mut acc = pier_netsim::split_mix64(&mut state);
        let mut fold = |p: u32| {
            state = acc ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            acc = pier_netsim::split_mix64(&mut state);
        };
        match &self.repr {
            Repr::Sparse(pos) => pos.iter().copied().for_each(&mut fold),
            Repr::Dense(bits) => dense_positions(bits).for_each(&mut fold),
        }
        acc
    }
}

/// One query's probe positions against `(m, k)` tables, computed once and
/// tested against many filters. The ultrapeer last-hop loop probes every
/// leaf filter with the same query, and the position arithmetic (a 64-bit
/// modulo per bit) depends only on the query and the table geometry — so
/// hoisting it turns the inner loop into pure bit tests.
pub struct QrpProbe {
    m: u32,
    k: u32,
    /// Flattened `terms × k` positions, first term first (the early-exit
    /// order of [`QrpFilter::matches_all`]). Empty ⇔ empty query, which
    /// routes nowhere.
    positions: Vec<u32>,
    /// The cached hash pairs, for the geometry-mismatch fallback.
    hashes: Vec<(u64, u64)>,
}

impl QrpProbe {
    /// Precompute the probe for `terms` against `(m, k)` tables.
    pub fn new(m: u32, k: u32, terms: &Terms) -> QrpProbe {
        let hashes = terms.qrp_hashes().to_vec();
        let mut positions = Vec::with_capacity(hashes.len() * k as usize);
        for &h in &hashes {
            for i in 0..k {
                positions.push(bit_position(m, h, i));
            }
        }
        QrpProbe { m, k, positions, hashes }
    }

    /// Probe against the standard LimeWire table geometry.
    pub fn with_defaults(terms: &Terms) -> QrpProbe {
        QrpProbe::new(QrpFilter::DEFAULT_BITS, QrpFilter::DEFAULT_HASHES, terms)
    }
}

/// Equality is over content — `(m, k, set positions)` — not representation,
/// so a promoted filter equals its never-promoted twin.
impl PartialEq for QrpFilter {
    fn eq(&self, other: &Self) -> bool {
        if self.m != other.m || self.k != other.k {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => a == b,
            (Repr::Dense(a), Repr::Dense(b)) => a == b,
            (Repr::Sparse(s), Repr::Dense(d)) | (Repr::Dense(d), Repr::Sparse(s)) => {
                s.len() as u32 == d.iter().map(|w| w.count_ones()).sum::<u32>()
                    && s.iter().all(|&p| d[(p / 64) as usize] & (1 << (p % 64)) != 0)
            }
        }
    }
}

impl Eq for QrpFilter {}

/// Canonical codec form: `(m, k, ascending set-bit positions)`. One wire
/// shape for both representations, so codec bytes never depend on whether
/// a filter crossed the promotion threshold.
#[derive(Serialize, Deserialize)]
struct WireFilter {
    m: u32,
    k: u32,
    positions: Vec<u32>,
}

impl Serialize for QrpFilter {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        WireFilter { m: self.m, k: self.k, positions: self.positions_vec() }.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for QrpFilter {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let w = WireFilter::deserialize(deserializer)?;
        if w.m < 64 || w.k == 0 {
            return Err(serde::de::Error::custom("invalid QRP filter dimensions"));
        }
        if w.positions.iter().any(|&p| p >= w.m) {
            return Err(serde::de::Error::custom("QRP position out of range"));
        }
        let mut positions = w.positions;
        positions.sort_unstable();
        positions.dedup();
        let mut f = QrpFilter::new(w.m, w.k);
        f.set_positions(positions);
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_netsim::HeapSize;

    #[test]
    fn no_false_negatives() {
        let mut f = QrpFilter::with_defaults();
        let terms: Vec<String> = (0..500).map(|i| format!("term{i}")).collect();
        for t in &terms {
            f.insert(t);
        }
        for t in &terms {
            assert!(f.contains(t), "false negative on {t}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = QrpFilter::with_defaults();
        for i in 0..300 {
            f.insert(&format!("present{i}"));
        }
        let fp = (0..10_000).filter(|i| f.contains(&format!("absent{i}"))).count();
        let rate = fp as f64 / 10_000.0;
        // 300 keywords in 65536 bits with k=2: expected fp rate well below 1%.
        assert!(rate < 0.01, "false positive rate {rate}");
    }

    #[test]
    fn matches_all_semantics() {
        let mut f = QrpFilter::with_defaults();
        f.insert("led");
        f.insert("zeppelin");
        assert!(f.matches_all(&Terms::from_text("led zeppelin")));
        assert!(f.matches_all(&Terms::from_text("led")));
        assert!(!f.matches_all(&Terms::from_text("led floyd")));
        assert!(!f.matches_all(&Terms::from_text("")), "empty query routes nowhere");
    }

    #[test]
    fn id_and_string_paths_agree() {
        // The cached-hash path must produce bit-identical filters to the
        // historical string-hashing path (same bits, same answers).
        let mut by_str = QrpFilter::new(1024, 3);
        let mut by_id = QrpFilter::new(1024, 3);
        let terms = ["led", "zeppelin", "stairway", "07"];
        for t in &terms {
            by_str.insert(t);
        }
        let ids: Vec<TermId> = terms.iter().map(|t| intern(t)).collect();
        by_id.insert_ids(&ids);
        assert_eq!(by_id, by_str, "cached hashes must set the exact same bits");
        for (t, id) in terms.iter().zip(&ids) {
            assert!(by_id.contains(t));
            assert!(by_str.contains_id(*id));
        }
    }

    #[test]
    fn wire_size_matches_table() {
        let f = QrpFilter::with_defaults();
        assert_eq!(f.wire_size(), 8192);
        assert_eq!(QrpFilter::new(100, 2).wire_size(), 13);
    }

    #[test]
    fn fill_ratio_grows() {
        let mut f = QrpFilter::new(1024, 2);
        assert_eq!(f.fill_ratio(), 0.0);
        for i in 0..100 {
            f.insert(&format!("t{i}"));
        }
        let r = f.fill_ratio();
        assert!(r > 0.05 && r < 0.5, "ratio {r}");
    }

    #[test]
    fn serde_roundtrip() {
        let mut f = QrpFilter::new(256, 3);
        f.insert("x");
        let bytes = pier_codec::to_bytes(&f).unwrap();
        let back: QrpFilter = pier_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        assert!(back.contains("x"));
    }

    #[test]
    fn serde_roundtrip_is_representation_independent() {
        let mut sparse = QrpFilter::new(256, 3);
        sparse.insert("x");
        sparse.insert("y");
        let mut dense = sparse.clone();
        dense.promote_to_dense();
        assert!(sparse.is_sparse());
        assert!(!dense.is_sparse());
        // Identical codec bytes whichever side of the threshold a filter
        // is on — the wire form is the canonical position set.
        let a = pier_codec::to_bytes(&sparse).unwrap();
        let b = pier_codec::to_bytes(&dense).unwrap();
        assert_eq!(a, b, "codec bytes must not leak the representation");
        let back: QrpFilter = pier_codec::from_bytes(&a).unwrap();
        assert_eq!(back, sparse);
        assert_eq!(back, dense);
    }

    #[test]
    fn promotion_at_threshold_preserves_content() {
        // m=1024 → sparse_limit 32 positions. Drive a filter across the
        // threshold one term at a time and check it against an eagerly
        // dense twin at every step.
        let mut adaptive = QrpFilter::new(1024, 2);
        let mut eager = QrpFilter::new(1024, 2);
        eager.promote_to_dense();
        assert_eq!(QrpFilter::sparse_limit(1024), 32);
        let mut crossed = false;
        for i in 0..100 {
            let t = format!("promo{i}");
            adaptive.insert(&t);
            eager.insert(&t);
            assert_eq!(adaptive, eager, "content diverged at term {i}");
            assert_eq!(adaptive.count_ones(), eager.count_ones());
            assert_eq!(adaptive.content_hash(), eager.content_hash());
            if !adaptive.is_sparse() {
                crossed = true;
            }
        }
        assert!(crossed, "100 terms × k=2 in 1024 bits must cross the 32-position limit");
        assert!(!adaptive.is_sparse(), "promotion is monotone");
    }

    #[test]
    fn sparse_heap_is_bounded_by_dense() {
        let mut f = QrpFilter::with_defaults();
        let mut dense = QrpFilter::with_defaults();
        dense.promote_to_dense();
        let dense_bytes = dense.heap_bytes();
        assert_eq!(dense_bytes, 8192);
        for i in 0..3000 {
            f.insert(&format!("s{i}"));
            assert!(
                f.heap_bytes() <= dense_bytes,
                "repr must never cost more than the dense table ({} > {dense_bytes})",
                f.heap_bytes()
            );
        }
        // A typical leaf share (hundreds of keywords) stays far under.
        let mut leaf = QrpFilter::with_defaults();
        for i in 0..200 {
            leaf.insert(&format!("leaf{i}"));
        }
        assert!(leaf.is_sparse());
        assert!(leaf.heap_bytes() <= 400 * 4);
    }

    #[test]
    fn probe_agrees_with_matches_all() {
        let mut sparse = QrpFilter::with_defaults();
        for t in ["led", "zeppelin", "stairway"] {
            sparse.insert(t);
        }
        let mut dense = sparse.clone();
        dense.promote_to_dense();
        let mut other_geometry = QrpFilter::new(1024, 3);
        other_geometry.insert("led");
        other_geometry.insert("zeppelin");
        for text in ["led zeppelin", "led", "led floyd", "floyd", ""] {
            let q = Terms::from_text(text);
            let probe = QrpProbe::with_defaults(&q);
            assert_eq!(sparse.matches_probe(&probe), sparse.matches_all(&q), "sparse {text:?}");
            assert_eq!(dense.matches_probe(&probe), dense.matches_all(&q), "dense {text:?}");
            assert_eq!(
                other_geometry.matches_probe(&probe),
                other_geometry.matches_all(&q),
                "mismatched geometry must fall back, not misroute: {text:?}"
            );
        }
    }

    #[test]
    fn content_hash_distinguishes_and_matches() {
        let mut a = QrpFilter::with_defaults();
        let mut b = QrpFilter::with_defaults();
        a.insert("same");
        b.insert("same");
        assert_eq!(a.content_hash(), b.content_hash());
        b.insert("extra");
        assert_ne!(a.content_hash(), b.content_hash());
        assert_ne!(
            QrpFilter::new(128, 2).content_hash(),
            QrpFilter::new(128, 3).content_hash(),
            "dimensions are part of the content"
        );
    }
}
