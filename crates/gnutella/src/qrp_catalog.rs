//! Process-wide QRP filter catalog: content-hashed interning of
//! [`QrpFilter`]s behind `Arc`, the `ShareCatalog` pattern applied to the
//! routing plane.
//!
//! Leaf shares are drawn from a Zipf catalog, so many leaves advertise
//! identical share-views and therefore publish byte-identical filters.
//! Every holder of a leaf filter — the leaf's own cached copy, and the
//! entry each of its ultrapeers keeps — resolves through [`intern`], so
//! the process stores one copy per distinct filter content no matter how
//! many nodes (or kernel shards) reference it.
//!
//! Determinism: `intern` is a pure function of filter *content* — two
//! calls with equal filters return `Arc`s to equal content, and nothing
//! behavioral (matching, wire size, codec bytes) can observe which
//! allocation was returned. Bucket bookkeeping (which `Weak` is still
//! live) varies with drop timing across labs, but only affects memory
//! accounting snapshots taken at quiescent points, never simulation
//! state.

use crate::bloom::QrpFilter;
use pier_netsim::HeapSize;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, Weak};

/// Interner buckets: content hash → live (weak) filters with that hash.
/// Weak references let a dropped lab's filters free their memory while the
/// catalog itself lives for the process (`mem_bench` builds several labs
/// in one run).
type Buckets = BTreeMap<u64, Vec<Weak<QrpFilter>>>;

// pier-lint: allow(shard-static): content-addressed interner — the result
// of `intern` is a pure function of the filter's content (the `TABLE` /
// `ShareCatalog` precedent), so shard workers can never observe divergent
// state through it, and its iteration order is never exposed to the sim.
static CATALOG: Mutex<Buckets> = Mutex::new(BTreeMap::new());

/// Return the canonical shared copy of `filter`, interning it if its
/// content is new. Dead entries in the touched bucket are pruned on the
/// way through.
pub fn intern(filter: QrpFilter) -> Arc<QrpFilter> {
    let hash = filter.content_hash();
    let mut buckets = CATALOG.lock().expect("qrp catalog poisoned");
    let bucket = buckets.entry(hash).or_default();
    let mut found = None;
    bucket.retain(|w| match w.upgrade() {
        Some(live) => {
            if found.is_none() && *live == filter {
                found = Some(live);
            }
            true
        }
        None => false,
    });
    if let Some(live) = found {
        return live;
    }
    let canonical = Arc::new(filter);
    bucket.push(Arc::downgrade(&canonical));
    canonical
}

/// Snapshot of the live catalog contents.
#[derive(Clone, Copy, Debug, Default)]
pub struct QrpCatalogStats {
    /// Distinct live filters.
    pub unique: usize,
    /// Bytes one copy of each live filter costs the process: the struct,
    /// the `Arc` refcounts, and the owned position/bit storage.
    pub bytes: usize,
}

/// Live unique-filter count and byte cost. Heap accounting charges each
/// interned filter exactly once, here — holders charge only their
/// pointer-sized entries.
pub fn stats() -> QrpCatalogStats {
    let buckets = CATALOG.lock().expect("qrp catalog poisoned");
    let mut s = QrpCatalogStats::default();
    // pier-lint: allow(det-iter): commutative sum over a BTreeMap (the
    // lint can't see the map type through the MutexGuard); visit order
    // cannot change the count or byte total, and the result feeds memory
    // accounting only, never simulation state.
    for bucket in buckets.values() {
        for w in bucket {
            if let Some(live) = w.upgrade() {
                s.unique += 1;
                s.bytes += size_of::<QrpFilter>() + 2 * size_of::<usize>() + live.heap_bytes();
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Filters whose content can't collide with other tests sharing the
    /// process-wide catalog.
    fn filter_of(tag: &str, terms: usize) -> QrpFilter {
        let mut f = QrpFilter::with_defaults();
        for i in 0..terms {
            f.insert(&format!("catalog_{tag}_{i}"));
        }
        f
    }

    #[test]
    fn identical_content_interns_to_one_allocation() {
        let a = intern(filter_of("dup", 40));
        let b = intern(filter_of("dup", 40));
        assert!(Arc::ptr_eq(&a, &b), "equal content must share one allocation");
        let c = intern(filter_of("other", 40));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn representation_does_not_split_the_catalog() {
        let sparse = filter_of("repr", 30);
        let mut dense = sparse.clone();
        dense.promote_to_dense();
        let a = intern(sparse);
        let b = intern(dense);
        assert!(Arc::ptr_eq(&a, &b), "interning is by content, not representation");
    }

    #[test]
    fn dead_entries_are_pruned_and_reinterned() {
        // Other tests share the process-wide catalog, so assert behavior
        // around content this test alone interns, not global counts.
        let tmp = intern(filter_of("temp", 25));
        drop(tmp);
        let again = intern(filter_of("temp", 25));
        assert!(again.contains("catalog_temp_0"), "re-intern after drop yields a live filter");
        let keep = intern(filter_of("keep", 25));
        let s = stats();
        assert!(s.unique >= 1, "a held filter is live in the stats");
        assert!(
            s.bytes >= keep.count_ones() as usize * size_of::<u32>(),
            "live filters stay charged"
        );
    }
}
