//! The leaf node: shares files, publishes its QRP filter to its ultrapeers,
//! answers last-hop forwarded queries, and issues its own searches through
//! an ultrapeer.

use crate::bloom::QrpFilter;
use crate::config::LeafConfig;
use crate::files::FileStore;
use crate::msg::{GnutellaMsg, Hit};
use crate::net::GnutellaNet;
use pier_netsim::{NodeId, SimTime};
use pier_trace::{TraceHandle, TraceKind};
use pier_vocab::Terms;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Results of one leaf-issued search.
#[derive(Clone, Debug)]
pub struct LeafSearch {
    pub terms: Terms,
    pub issued_at: SimTime,
    pub first_hit_at: Option<SimTime>,
    pub hits: Vec<Hit>,
    pub done: bool,
}

impl pier_netsim::HeapSize for LeafSearch {
    fn heap_bytes(&self) -> usize {
        // `terms` is an `Arc`-shared payload, charged at its origin.
        self.hits.heap_bytes()
    }
}

/// The leaf protocol state machine. The home-ultrapeer list is a
/// `Box<[NodeId]>`: it is set once at spawn and only rebuilt on (rare)
/// churn repair, so the slimmer no-spare-capacity representation wins at
/// hundreds of thousands of leaves.
pub struct LeafCore {
    pub cfg: LeafConfig,
    ultrapeers: Box<[NodeId]>,
    store: FileStore,
    /// The share's QRP filter, built lazily on first publish and interned
    /// in the process-wide [`crate::qrp_catalog`]. The share is immutable,
    /// so connect and churn re-attachment advertise one canonical copy.
    qrp: Option<Arc<QrpFilter>>,
    next_qid: u32,
    /// Keyed by the densely-allocated qid; a `BTreeMap` so the
    /// `searches()` driver API iterates in issue order, never in
    /// hasher order (pier-lint DET-ITER).
    searches: BTreeMap<u32, LeafSearch>,
    /// Causal query tracing (inert unless the driver sampled queries).
    trace: TraceHandle,
}

impl LeafCore {
    pub fn new(cfg: LeafConfig, store: FileStore) -> Self {
        LeafCore {
            cfg,
            ultrapeers: Box::default(),
            store,
            qrp: None,
            next_qid: 1,
            searches: BTreeMap::new(),
            trace: TraceHandle::default(),
        }
    }

    /// Attach the run's tracer (driver API; the default handle is inert).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    pub fn set_ultrapeers(&mut self, ups: Vec<NodeId>) {
        self.ultrapeers = ups.into_boxed_slice();
    }

    pub fn ultrapeers(&self) -> &[NodeId] {
        &self.ultrapeers
    }

    /// Topology repair: swap a dead home ultrapeer for a live replacement,
    /// keeping slot order (slot 0 is the query path). Returns whether the
    /// dead ultrapeer was actually a home.
    pub fn replace_ultrapeer(&mut self, dead: NodeId, replacement: NodeId) -> bool {
        if self.ultrapeers.contains(&replacement) {
            // Already connected: just drop the dead entry.
            let before = self.ultrapeers.len();
            self.ultrapeers = self.ultrapeers.iter().copied().filter(|&u| u != dead).collect();
            return self.ultrapeers.len() != before;
        }
        match self.ultrapeers.iter_mut().find(|u| **u == dead) {
            Some(slot) => {
                *slot = replacement;
                true
            }
            None => false,
        }
    }

    /// Push the share's QRP filter to one ultrapeer (re-attachment path;
    /// the full-broadcast [`LeafCore::publish_qrp`] runs on connect).
    pub fn publish_qrp_to(&mut self, net: &mut dyn GnutellaNet, up: NodeId) {
        let filter = Box::new(QrpFilter::clone(self.qrp_filter()));
        net.send(up, GnutellaMsg::QrpUpdate { filter });
    }

    pub fn store(&self) -> &FileStore {
        &self.store
    }

    /// The share's QRP filter (one builder for connect and re-attachment,
    /// so the two paths can never advertise different filters), resolved
    /// through the process-wide catalog and cached.
    fn qrp_filter(&mut self) -> &Arc<QrpFilter> {
        if self.qrp.is_none() {
            let mut filter = QrpFilter::with_defaults();
            filter.insert_ids(self.store.all_tokens());
            self.qrp = Some(crate::qrp_catalog::intern(filter));
        }
        self.qrp.as_ref().expect("just built")
    }

    /// Publish the QRP filter of our share to every ultrapeer (done on
    /// connect; the paper's leaves "publish [their] file list to those
    /// ultrapeers").
    pub fn publish_qrp(&mut self, net: &mut dyn GnutellaNet) {
        let shared = Arc::clone(self.qrp_filter());
        for &up in &self.ultrapeers {
            net.send(up, GnutellaMsg::QrpUpdate { filter: Box::new(QrpFilter::clone(&shared)) });
        }
    }

    /// Issue a search via our first ultrapeer. Returns the local query id.
    pub fn start_search(&mut self, net: &mut dyn GnutellaNet, terms: impl Into<Terms>) -> u32 {
        let terms: Terms = terms.into();
        let qid = self.next_qid;
        self.next_qid += 1;
        self.searches.insert(
            qid,
            LeafSearch {
                terms: terms.clone(),
                issued_at: net.now(),
                first_hit_at: None,
                hits: Vec::new(),
                done: false,
            },
        );
        if let Some(&up) = self.ultrapeers.first() {
            net.send(up, GnutellaMsg::LeafQuery { qid, terms });
        }
        qid
    }

    pub fn search(&self, qid: u32) -> Option<&LeafSearch> {
        self.searches.get(&qid)
    }

    pub fn searches(&self) -> impl Iterator<Item = (u32, &LeafSearch)> {
        self.searches.iter().map(|(q, s)| (*q, s))
    }

    /// Heap accounting by subsystem (see `pier_netsim::Sim::mem_stats`).
    /// The shared catalog behind the store is *not* charged here, and
    /// neither is the cached `qrp` filter — it is interned in the
    /// process-wide `qrp_catalog`, which charges each distinct filter once.
    pub fn mem_stats(&self, acc: &mut pier_netsim::MemAcc) {
        use pier_netsim::HeapSize;
        acc.add("leaf.share", self.store.own_heap_bytes());
        acc.add("leaf.topology", self.ultrapeers.heap_bytes());
        acc.add("leaf.searches", self.searches.heap_bytes());
    }

    pub fn on_message(&mut self, net: &mut dyn GnutellaNet, from: NodeId, msg: GnutellaMsg) {
        match msg {
            GnutellaMsg::LeafForward { guid, terms } => {
                let hits: Vec<Hit> = self
                    .store
                    .matching(&terms)
                    .into_iter()
                    .map(|f| Hit { file: f.clone(), host: net.self_node() })
                    .collect();
                net.count(crate::classes::LEAF_MATCHES.id(), hits.len() as u64);
                if let Some(t) = self.trace.lookup(guid.0) {
                    let (me, at) = (net.self_node().index() as u64, net.now().as_micros());
                    self.trace.emit(
                        t,
                        at,
                        me,
                        TraceKind::LeafMatch,
                        Some(from.index() as u64),
                        hits.len() as u64,
                        0,
                    );
                }
                if !hits.is_empty() {
                    net.send(from, GnutellaMsg::LeafHits { guid, hits });
                }
            }
            GnutellaMsg::LeafResults { qid, hits, done } => {
                if let Some(s) = self.searches.get_mut(&qid) {
                    if s.first_hit_at.is_none() && !hits.is_empty() {
                        s.first_hit_at = Some(net.now());
                    }
                    s.hits.extend(hits);
                    s.done |= done;
                }
            }
            GnutellaMsg::BrowseHost => {
                net.send(from, GnutellaMsg::BrowseHostReply { files: self.store.metas() });
            }
            _ => net.count(crate::classes::UNEXPECTED_MSG.id(), 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::FileMeta;
    use crate::msg::Guid;
    use pier_netsim::{stream_rng, SimRng};

    struct FakeNet {
        now: SimTime,
        me: NodeId,
        rng: SimRng,
        sent: Vec<(NodeId, GnutellaMsg)>,
    }

    impl FakeNet {
        fn new(me: u32) -> Self {
            FakeNet { now: SimTime::ZERO, me: NodeId::new(me), rng: stream_rng(2, 0), sent: vec![] }
        }
        fn drain(&mut self) -> Vec<(NodeId, GnutellaMsg)> {
            std::mem::take(&mut self.sent)
        }
    }

    impl GnutellaNet for FakeNet {
        fn now(&self) -> SimTime {
            self.now
        }
        fn self_node(&self) -> NodeId {
            self.me
        }
        fn rng(&mut self) -> &mut SimRng {
            &mut self.rng
        }
        fn send(&mut self, dst: NodeId, msg: GnutellaMsg) {
            self.sent.push((dst, msg));
        }
        fn count(&mut self, _class: pier_netsim::MetricClass, _n: u64) {}
        fn observe(&mut self, _class: pier_netsim::MetricClass, _value: f64) {}
    }

    fn leaf_with_files() -> (LeafCore, FakeNet) {
        let store = FileStore::new(vec![
            FileMeta::new("led_zeppelin_iv.mp3", 1),
            FileMeta::new("cat_video.avi", 2),
        ]);
        let mut core = LeafCore::new(LeafConfig::default(), store);
        core.set_ultrapeers(vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        (core, FakeNet::new(100))
    }

    #[test]
    fn qrp_published_to_all_ultrapeers() {
        let (mut core, mut net) = leaf_with_files();
        core.publish_qrp(&mut net);
        let sent = net.drain();
        assert_eq!(sent.len(), 3);
        for (_, m) in &sent {
            match m {
                GnutellaMsg::QrpUpdate { filter } => {
                    assert!(filter.contains("zeppelin"));
                    assert!(filter.contains("cat"));
                    assert!(!filter.contains("floyd"));
                }
                other => panic!("expected QrpUpdate, got {other:?}"),
            }
        }
    }

    #[test]
    fn forwarded_query_answered_with_matches() {
        let (mut core, mut net) = leaf_with_files();
        core.on_message(
            &mut net,
            NodeId::new(1),
            GnutellaMsg::LeafForward { guid: Guid(5), terms: "led zeppelin".into() },
        );
        let sent = net.drain();
        assert_eq!(sent.len(), 1);
        match &sent[0].1 {
            GnutellaMsg::LeafHits { guid, hits } => {
                assert_eq!(*guid, Guid(5));
                assert_eq!(hits.len(), 1);
                assert_eq!(hits[0].host, NodeId::new(100));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Non-matching forward: silence (no empty messages).
        core.on_message(
            &mut net,
            NodeId::new(1),
            GnutellaMsg::LeafForward { guid: Guid(6), terms: "floyd".into() },
        );
        assert!(net.drain().is_empty());
    }

    #[test]
    fn search_lifecycle() {
        let (mut core, mut net) = leaf_with_files();
        let qid = core.start_search(&mut net, "some song");
        let sent = net.drain();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, NodeId::new(1), "search goes to the first ultrapeer");
        // Streaming results arrive.
        let hit = Hit { file: FileMeta::new("some_song.mp3", 1), host: NodeId::new(7) };
        core.on_message(
            &mut net,
            NodeId::new(1),
            GnutellaMsg::LeafResults { qid, hits: vec![hit], done: false },
        );
        core.on_message(
            &mut net,
            NodeId::new(1),
            GnutellaMsg::LeafResults { qid, hits: vec![], done: true },
        );
        let s = core.search(qid).unwrap();
        assert_eq!(s.hits.len(), 1);
        assert!(s.done);
        assert!(s.first_hit_at.is_some());
    }

    #[test]
    fn browse_host_returns_share() {
        let (mut core, mut net) = leaf_with_files();
        core.on_message(&mut net, NodeId::new(9), GnutellaMsg::BrowseHost);
        match &net.drain()[0].1 {
            GnutellaMsg::BrowseHostReply { files } => assert_eq!(files.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
