//! Simulator actors wrapping the protocol cores.

use crate::leaf::LeafCore;
use crate::msg::GnutellaMsg;
use crate::net::CtxGnutellaNet;
use crate::ultrapeer::UltrapeerCore;
use pier_netsim::{Actor, Ctx, NodeId, TimerToken};

/// Timer token for the ultrapeer maintenance tick.
pub const UP_TICK: TimerToken = TimerToken(0x6E55);

/// An ultrapeer actor.
pub struct UltrapeerNode {
    pub core: UltrapeerCore,
}

impl UltrapeerNode {
    pub fn new(core: UltrapeerCore) -> Self {
        UltrapeerNode { core }
    }
}

impl Actor<GnutellaMsg> for UltrapeerNode {
    fn on_start(&mut self, ctx: &mut dyn Ctx<GnutellaMsg>) {
        ctx.set_timer(self.core.cfg.tick, UP_TICK);
    }

    fn on_message(&mut self, ctx: &mut dyn Ctx<GnutellaMsg>, from: NodeId, msg: GnutellaMsg) {
        let mut net = CtxGnutellaNet { ctx };
        self.core.on_message(&mut net, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut dyn Ctx<GnutellaMsg>, token: TimerToken) {
        if token == UP_TICK {
            ctx.set_timer(self.core.cfg.tick, UP_TICK);
            let mut net = CtxGnutellaNet { ctx };
            self.core.tick(&mut net);
        }
    }

    fn on_down(&mut self, _ctx: &mut dyn Ctx<GnutellaMsg>) {
        self.core.end_session();
    }

    fn mem_stats(&self, acc: &mut pier_netsim::MemAcc) {
        self.core.mem_stats(acc);
    }
}

/// A leaf actor. Publishes its QRP filter on startup.
pub struct LeafNode {
    pub core: LeafCore,
}

impl LeafNode {
    pub fn new(core: LeafCore) -> Self {
        LeafNode { core }
    }
}

impl Actor<GnutellaMsg> for LeafNode {
    fn on_start(&mut self, ctx: &mut dyn Ctx<GnutellaMsg>) {
        let mut net = CtxGnutellaNet { ctx };
        self.core.publish_qrp(&mut net);
    }

    fn on_message(&mut self, ctx: &mut dyn Ctx<GnutellaMsg>, from: NodeId, msg: GnutellaMsg) {
        let mut net = CtxGnutellaNet { ctx };
        self.core.on_message(&mut net, from, msg);
    }

    fn on_timer(&mut self, _ctx: &mut dyn Ctx<GnutellaMsg>, _token: TimerToken) {}

    fn mem_stats(&self, acc: &mut pier_netsim::MemAcc) {
        self.core.mem_stats(acc);
    }
}
