//! Two-tier topology generation (ultrapeers + leaves) and spawning a whole
//! Gnutella network into a simulation.

use crate::config::{LeafConfig, UltrapeerConfig};
use crate::files::{FileMeta, FileStore};
use crate::leaf::LeafCore;
use crate::msg::GnutellaMsg;
use crate::node::{LeafNode, UltrapeerNode};
use crate::ultrapeer::UltrapeerCore;
use pier_netsim::{stream_rng, NodeId, Sim};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of a generated network.
#[derive(Clone, Debug)]
pub struct TopologyConfig {
    pub ultrapeers: usize,
    pub leaves: usize,
    /// Fraction of ultrapeers with the old LimeWire profile (75 leaves,
    /// 6 neighbors); the rest use the new profile (30 leaves, 32 neighbors).
    pub old_style_fraction: f64,
    /// Ultrapeer connections per leaf.
    pub leaf_ups: usize,
    pub seed: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            ultrapeers: 300,
            leaves: 9_000,
            old_style_fraction: 0.3,
            leaf_ups: 3,
            seed: 0x6E75,
        }
    }
}

/// A generated (but not yet spawned) topology. Ultrapeer indices are
/// `0..ultrapeers`, leaf indices `0..leaves`.
#[derive(Clone, Debug)]
pub struct Topology {
    pub up_profiles: Vec<UltrapeerConfig>,
    /// Undirected ultrapeer edges (deduplicated, no self-loops).
    pub up_edges: Vec<(usize, usize)>,
    /// For each leaf, its ultrapeers (first entry = the one it queries via).
    pub leaf_homes: Vec<Vec<usize>>,
}

impl Topology {
    /// Generate a random topology with configuration-model wiring among
    /// ultrapeers (degree targets from their profiles).
    pub fn generate(cfg: &TopologyConfig) -> Topology {
        assert!(cfg.ultrapeers >= 2, "need at least two ultrapeers");
        assert!(cfg.leaf_ups >= 1);
        let mut rng = stream_rng(cfg.seed, 0);

        let up_profiles: Vec<UltrapeerConfig> = (0..cfg.ultrapeers)
            .map(|_| {
                if rng.random_bool(cfg.old_style_fraction.clamp(0.0, 1.0)) {
                    UltrapeerConfig::old_style()
                } else {
                    UltrapeerConfig::default()
                }
            })
            .collect();

        // Configuration model: one stub per unit of desired degree, shuffle,
        // pair; drop self-loops and duplicates.
        let mut stubs: Vec<usize> = Vec::new();
        for (i, p) in up_profiles.iter().enumerate() {
            // Degree targets are capped by network size.
            let degree = p.up_neighbors.min(cfg.ultrapeers - 1);
            stubs.extend(std::iter::repeat_n(i, degree));
        }
        stubs.shuffle(&mut rng);
        let mut edge_set = std::collections::HashSet::new();
        for pair in stubs.chunks_exact(2) {
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            if a != b {
                edge_set.insert((a, b));
            }
        }
        // Guarantee connectivity: chain any isolated ultrapeers in.
        let mut degree = vec![0usize; cfg.ultrapeers];
        for (a, b) in &edge_set {
            degree[*a] += 1;
            degree[*b] += 1;
        }
        for i in 0..cfg.ultrapeers {
            if degree[i] == 0 {
                let j = (i + 1) % cfg.ultrapeers;
                edge_set.insert((i.min(j), i.max(j)));
                degree[i] += 1;
                degree[j] += 1;
            }
        }
        let up_edges: Vec<(usize, usize)> = {
            let mut v: Vec<_> = edge_set.into_iter().collect();
            v.sort_unstable();
            v
        };

        // Assign leaves to ultrapeers with capacity, round-robin over a
        // shuffled order; extra connections go to random other ultrapeers.
        let mut capacity: Vec<usize> = up_profiles.iter().map(|p| p.max_leaves).collect();
        let mut order: Vec<usize> = (0..cfg.ultrapeers).collect();
        order.shuffle(&mut rng);
        let mut leaf_homes = Vec::with_capacity(cfg.leaves);
        let mut cursor = 0usize;
        for _ in 0..cfg.leaves {
            // Find the next ultrapeer with spare capacity (wrapping).
            let mut tries = 0;
            let home = loop {
                let cand = order[cursor % cfg.ultrapeers];
                cursor += 1;
                tries += 1;
                if capacity[cand] > 0 {
                    capacity[cand] -= 1;
                    break Some(cand);
                }
                if tries > cfg.ultrapeers {
                    break None; // network full: leaf attaches anyway (over capacity)
                }
            }
            .unwrap_or_else(|| rng.random_range(0..cfg.ultrapeers));
            let mut homes = vec![home];
            while homes.len() < cfg.leaf_ups.min(cfg.ultrapeers) {
                let extra = rng.random_range(0..cfg.ultrapeers);
                if !homes.contains(&extra) {
                    homes.push(extra);
                }
            }
            leaf_homes.push(homes);
        }

        Topology { up_profiles, up_edges, leaf_homes }
    }

    pub fn ultrapeer_count(&self) -> usize {
        self.up_profiles.len()
    }

    pub fn leaf_count(&self) -> usize {
        self.leaf_homes.len()
    }

    /// Adjacency lists of the ultrapeer graph.
    pub fn up_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.up_profiles.len()];
        for &(a, b) in &self.up_edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }
}

/// Node ids of a spawned network.
pub struct GnutellaHandles {
    pub ups: Vec<NodeId>,
    pub leaves: Vec<NodeId>,
}

/// Spawn the topology into a simulation. `up_files[i]` / `leaf_files[j]`
/// are the shares of ultrapeer `i` / leaf `j` (commonly empty for
/// ultrapeers). Each node gets a store owning its own catalog; networks
/// whose shares come from one workload catalog should build shared-catalog
/// stores and use [`spawn_stores`] instead.
pub fn spawn(
    sim: &mut Sim<GnutellaMsg>,
    topo: &Topology,
    up_files: Vec<Vec<FileMeta>>,
    leaf_files: Vec<Vec<FileMeta>>,
) -> GnutellaHandles {
    spawn_stores(
        sim,
        topo,
        up_files.into_iter().map(FileStore::new).collect(),
        leaf_files.into_iter().map(FileStore::new).collect(),
    )
}

/// Spawn the topology with pre-built [`FileStore`]s — the shared-catalog
/// path: one `Arc<ShareCatalog>` process-wide, a `Box<[FileId]>` per node.
pub fn spawn_stores(
    sim: &mut Sim<GnutellaMsg>,
    topo: &Topology,
    up_stores: Vec<FileStore>,
    leaf_stores: Vec<FileStore>,
) -> GnutellaHandles {
    assert_eq!(up_stores.len(), topo.ultrapeer_count());
    assert_eq!(leaf_stores.len(), topo.leaf_count());
    let base = sim.len() as u32;
    let up_id = |i: usize| NodeId::new(base + i as u32);
    let leaf_id = |j: usize| NodeId::new(base + topo.ultrapeer_count() as u32 + j as u32);

    let adj = topo.up_adjacency();
    let mut ups = Vec::with_capacity(topo.ultrapeer_count());
    for (i, store) in up_stores.into_iter().enumerate() {
        let mut core = UltrapeerCore::new(topo.up_profiles[i].clone(), store);
        core.set_neighbors(adj[i].iter().map(|&n| up_id(n)).collect());
        for (j, homes) in topo.leaf_homes.iter().enumerate() {
            if homes.contains(&i) {
                core.add_leaf(leaf_id(j));
            }
        }
        let id = sim.add_node(UltrapeerNode::new(core));
        debug_assert_eq!(id, up_id(i));
        ups.push(id);
    }
    let mut leaves = Vec::with_capacity(topo.leaf_count());
    for (j, store) in leaf_stores.into_iter().enumerate() {
        let mut core = LeafCore::new(LeafConfig::default(), store);
        core.set_ultrapeers(topo.leaf_homes[j].iter().map(|&u| up_id(u)).collect());
        let id = sim.add_node(LeafNode::new(core));
        debug_assert_eq!(id, leaf_id(j));
        leaves.push(id);
    }
    GnutellaHandles { ups, leaves }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TopologyConfig {
        TopologyConfig {
            ultrapeers: 40,
            leaves: 400,
            old_style_fraction: 0.25,
            leaf_ups: 3,
            seed: 5,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Topology::generate(&small_cfg());
        let b = Topology::generate(&small_cfg());
        assert_eq!(a.up_edges, b.up_edges);
        assert_eq!(a.leaf_homes, b.leaf_homes);
    }

    #[test]
    fn degrees_near_profile_targets() {
        let topo = Topology::generate(&small_cfg());
        let adj = topo.up_adjacency();
        for (i, profile) in topo.up_profiles.iter().enumerate() {
            let target = profile.up_neighbors.min(39);
            assert!(!adj[i].is_empty(), "ultrapeer {i} isolated");
            // Configuration model loses some stubs to dedup; allow slack.
            assert!(adj[i].len() <= target + 1, "ultrapeer {i}: {} > {}", adj[i].len(), target);
        }
    }

    #[test]
    fn no_self_loops_or_duplicate_edges() {
        let topo = Topology::generate(&small_cfg());
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &topo.up_edges {
            assert_ne!(a, b);
            assert!(a < b, "edges normalized");
            assert!(seen.insert((a, b)), "duplicate edge");
        }
    }

    #[test]
    fn every_leaf_has_distinct_homes() {
        let topo = Topology::generate(&small_cfg());
        assert_eq!(topo.leaf_count(), 400);
        for homes in &topo.leaf_homes {
            assert_eq!(homes.len(), 3);
            let set: std::collections::HashSet<_> = homes.iter().collect();
            assert_eq!(set.len(), 3, "homes must be distinct");
        }
    }

    #[test]
    fn leaf_load_respects_capacity_mostly() {
        let topo = Topology::generate(&small_cfg());
        let mut primary_load = vec![0usize; topo.ultrapeer_count()];
        for homes in &topo.leaf_homes {
            primary_load[homes[0]] += 1;
        }
        for (i, profile) in topo.up_profiles.iter().enumerate() {
            assert!(
                primary_load[i] <= profile.max_leaves,
                "ultrapeer {i} over capacity: {} > {}",
                primary_load[i],
                profile.max_leaves
            );
        }
    }

    #[test]
    fn up_graph_is_connected() {
        let topo = Topology::generate(&small_cfg());
        let adj = topo.up_adjacency();
        let mut visited = vec![false; adj.len()];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !visited[w] {
                    visited[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        assert_eq!(count, adj.len(), "ultrapeer graph must be connected");
    }
}
