//! Gnutella protocol parameters.

use pier_netsim::SimDuration;

/// Ultrapeer behaviour knobs. Defaults follow the crawl findings in §4.1 of
/// the paper (newer LimeWire ultrapeers: 30 leaves, 32 ultrapeer
/// neighbors) and LimeWire's dynamic-querying constants.
#[derive(Clone, Debug)]
pub struct UltrapeerConfig {
    /// Maximum leaf connections.
    pub max_leaves: usize,
    /// Target ultrapeer degree.
    pub up_neighbors: usize,
    /// TTL for classic (non-dynamic) flooded queries.
    pub flood_ttl: u8,
    /// TTL used for the cheap first probe of a dynamic query.
    pub probe_ttl: u8,
    /// How many neighbors receive the initial probe. The rest are reached
    /// one at a time by deeper probes; a probed neighbor has already seen
    /// the GUID and never relays, so probing everyone up front would
    /// blind the deep phase.
    pub probe_neighbors: usize,
    /// TTL used for per-neighbor dynamic-query iterations.
    pub dyn_ttl: u8,
    /// Pause between dynamic-query probes to successive neighbors. This
    /// pacing is what makes rare-item queries slow on Gnutella (the 73 s
    /// first-result latency of Fig. 7).
    pub probe_interval: SimDuration,
    /// Stop a dynamic query once this many results arrived.
    pub target_results: usize,
    /// Per-message forwarding delay at an ultrapeer (processing/queueing).
    pub forward_delay: SimDuration,
    /// Seen-GUID table entries expire after this long.
    pub seen_ttl: SimDuration,
    /// Maintenance tick.
    pub tick: SimDuration,
    /// Cap on hits per QueryHit message (the protocol's 255 limit, lowered
    /// keeps messages realistic).
    pub max_hits_per_msg: usize,
}

impl Default for UltrapeerConfig {
    fn default() -> Self {
        UltrapeerConfig {
            max_leaves: 30,
            up_neighbors: 32,
            flood_ttl: 4,
            probe_ttl: 1,
            probe_neighbors: 10,
            dyn_ttl: 2,
            probe_interval: SimDuration::from_millis(2400),
            target_results: 150,
            forward_delay: SimDuration::from_millis(40),
            seen_ttl: SimDuration::from_secs(120),
            tick: SimDuration::from_millis(400),
            max_hits_per_msg: 64,
        }
    }
}

impl UltrapeerConfig {
    /// The older LimeWire profile the crawl also observed: 75 leaves,
    /// 6 ultrapeer neighbors.
    pub fn old_style() -> Self {
        UltrapeerConfig { max_leaves: 75, up_neighbors: 6, ..Default::default() }
    }
}

/// Leaf parameters.
#[derive(Clone, Debug)]
pub struct LeafConfig {
    /// How many ultrapeers a leaf connects to.
    pub ultrapeers: usize,
    /// Give up on a query after this long with no results.
    pub query_patience: SimDuration,
}

impl Default for LeafConfig {
    fn default() -> Self {
        LeafConfig { ultrapeers: 3, query_patience: SimDuration::from_secs(90) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_crawl_findings() {
        let c = UltrapeerConfig::default();
        assert_eq!(c.max_leaves, 30);
        assert_eq!(c.up_neighbors, 32);
        let old = UltrapeerConfig::old_style();
        assert_eq!(old.max_leaves, 75);
        assert_eq!(old.up_neighbors, 6);
    }

    #[test]
    fn pacing_dominates_latency_budget() {
        // 32 neighbors at 2.4 s pacing ≈ 77 s worst case — the order of the
        // paper's 73 s single-result latency.
        let c = UltrapeerConfig::default();
        let worst = c.probe_interval.as_secs_f64() * c.up_neighbors as f64;
        assert!((60.0..100.0).contains(&worst));
    }
}
