//! The topology crawler: a parallel BFS over ultrapeer neighbor lists, the
//! counterpart of the paper's 45-minute, 100,000-node crawl (§4.1).

use crate::msg::GnutellaMsg;
use pier_netsim::{Actor, Ctx, NodeId, SimDuration, SimTime, TimerToken};
use std::collections::{HashMap, HashSet, VecDeque};

const CRAWL_TICK: TimerToken = TimerToken(0xC4A1);

/// The crawled snapshot.
#[derive(Clone, Debug, Default)]
pub struct CrawlGraph {
    /// Ultrapeer → its ultrapeer neighbors.
    pub adj: HashMap<NodeId, Vec<NodeId>>,
    /// Ultrapeer → its leaves.
    pub leaves: HashMap<NodeId, Vec<NodeId>>,
}

impl CrawlGraph {
    pub fn ultrapeer_count(&self) -> usize {
        self.adj.len()
    }

    pub fn leaf_count(&self) -> usize {
        let distinct: HashSet<NodeId> = self.leaves.values().flatten().copied().collect();
        distinct.len()
    }

    /// Total network size estimate (ultrapeers + distinct leaves).
    pub fn network_size(&self) -> usize {
        self.ultrapeer_count() + self.leaf_count()
    }

    /// Degree histogram of the ultrapeer graph.
    pub fn degree_counts(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        // pier-lint: allow(det-iter): commutative count-merge into a map
        // keyed by degree; visit order cannot change any count, and every
        // consumer (fig8 table, tests) reduces the histogram with sums.
        for neighbors in self.adj.values() {
            *h.entry(neighbors.len()).or_insert(0) += 1;
        }
        h
    }
}

/// A crawler actor: seed it with known ultrapeers, run the simulation until
/// [`Crawler::done`], read [`Crawler::graph`].
pub struct Crawler {
    seeds: Vec<NodeId>,
    max_inflight: usize,
    rpc_timeout: SimDuration,
    queue: VecDeque<NodeId>,
    pending: HashMap<NodeId, SimTime>,
    visited: HashSet<NodeId>,
    pub graph: CrawlGraph,
    pub started_at: SimTime,
    pub finished_at: Option<SimTime>,
}

impl Crawler {
    pub fn new(seeds: Vec<NodeId>, max_inflight: usize) -> Self {
        Crawler {
            seeds,
            max_inflight,
            rpc_timeout: SimDuration::from_secs(5),
            queue: VecDeque::new(),
            pending: HashMap::new(),
            visited: HashSet::new(),
            graph: CrawlGraph::default(),
            started_at: SimTime::ZERO,
            finished_at: None,
        }
    }

    pub fn done(&self) -> bool {
        self.finished_at.is_some()
    }

    fn pump(&mut self, ctx: &mut dyn Ctx<GnutellaMsg>) {
        while self.pending.len() < self.max_inflight {
            let Some(next) = self.queue.pop_front() else {
                break;
            };
            self.pending.insert(next, ctx.now() + self.rpc_timeout);
            let msg = GnutellaMsg::CrawlPing;
            let size = msg.wire_size();
            ctx.send(next, msg, size, crate::classes::CRAWL_PING.id());
        }
        if self.pending.is_empty() && self.queue.is_empty() && self.finished_at.is_none() {
            self.finished_at = Some(ctx.now());
            ctx.observe(
                crate::classes::CRAWL_DURATION_S.id(),
                (ctx.now() - self.started_at).as_secs_f64(),
            );
        }
    }
}

impl Actor<GnutellaMsg> for Crawler {
    fn on_start(&mut self, ctx: &mut dyn Ctx<GnutellaMsg>) {
        self.started_at = ctx.now();
        let seeds = self.seeds.clone();
        for s in seeds {
            if self.visited.insert(s) {
                self.queue.push_back(s);
            }
        }
        ctx.set_timer(SimDuration::from_millis(500), CRAWL_TICK);
        self.pump(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn Ctx<GnutellaMsg>, from: NodeId, msg: GnutellaMsg) {
        if let GnutellaMsg::CrawlPong { neighbors, leaves } = msg {
            self.pending.remove(&from);
            for n in &neighbors {
                if self.visited.insert(*n) {
                    self.queue.push_back(*n);
                }
            }
            self.graph.adj.insert(from, neighbors);
            self.graph.leaves.insert(from, leaves);
            self.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Ctx<GnutellaMsg>, token: TimerToken) {
        if token != CRAWL_TICK {
            return;
        }
        // Expire unresponsive nodes (down ultrapeers) so the crawl finishes.
        let now = ctx.now();
        self.pending.retain(|_, deadline| *deadline > now);
        self.pump(ctx);
        if self.finished_at.is_none() {
            ctx.set_timer(SimDuration::from_millis(500), CRAWL_TICK);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::FileMeta;
    use crate::topology::{spawn, Topology, TopologyConfig};
    use pier_netsim::{ConstantLatency, Sim, SimConfig};

    fn crawl_network(ups: usize, leaves: usize) -> (Sim<GnutellaMsg>, NodeId, usize) {
        let cfg = SimConfig::with_seed(77).latency(ConstantLatency(SimDuration::from_millis(30)));
        let mut sim = Sim::new(cfg);
        let topo = Topology::generate(&TopologyConfig {
            ultrapeers: ups,
            leaves,
            old_style_fraction: 0.3,
            leaf_ups: 2,
            seed: 9,
        });
        let up_files = vec![Vec::<FileMeta>::new(); ups];
        let leaf_files = vec![Vec::<FileMeta>::new(); leaves];
        let handles = spawn(&mut sim, &topo, up_files, leaf_files);
        let crawler = sim.add_node(Crawler::new(vec![handles.ups[0]], 50));
        (sim, crawler, ups)
    }

    #[test]
    fn crawl_discovers_whole_network() {
        let (mut sim, crawler, ups) = crawl_network(60, 600);
        sim.run_for(SimDuration::from_secs(60));
        let c = sim.actor::<Crawler>(crawler);
        assert!(c.done(), "crawl must finish");
        assert_eq!(c.graph.ultrapeer_count(), ups);
        assert_eq!(c.graph.leaf_count(), 600);
        assert_eq!(c.graph.network_size(), 660);
    }

    #[test]
    fn crawl_survives_down_ultrapeers() {
        let (mut sim, crawler, ups) = crawl_network(60, 300);
        // Take down a few ultrapeers before the crawl reaches them.
        sim.set_down(NodeId::new(5));
        sim.set_down(NodeId::new(17));
        sim.run_for(SimDuration::from_secs(120));
        let c = sim.actor::<Crawler>(crawler);
        assert!(c.done(), "crawl must finish despite dead nodes");
        // The dead nodes appear as neighbors but answer nothing.
        assert!(c.graph.ultrapeer_count() >= ups - 2 - 5);
        assert!(c.graph.ultrapeer_count() <= ups - 2);
    }

    #[test]
    fn degree_counts_reflect_profiles() {
        let (mut sim, crawler, _) = crawl_network(80, 200);
        sim.run_for(SimDuration::from_secs(60));
        let c = sim.actor::<Crawler>(crawler);
        let degrees = c.graph.degree_counts();
        // Old-style ultrapeers have ~6 neighbors, new-style ~32; the
        // histogram must be bimodal-ish: some low-degree, some high-degree.
        let low: usize = degrees.iter().filter(|(d, _)| **d <= 10).map(|(_, c)| c).sum();
        let high: usize = degrees.iter().filter(|(d, _)| **d > 20).map(|(_, c)| c).sum();
        assert!(low > 0, "expected old-style low-degree ultrapeers");
        assert!(high > 0, "expected new-style high-degree ultrapeers");
    }
}
