//! Shared-file metadata and Gnutella-side query matching.
//!
//! Matching follows LimeWire semantics: a query matches a file when every
//! query term appears as a *token* of the filename (case-insensitive).
//! Unlike PIERSearch (§3.1 of the paper), plain Gnutella does **not** strip
//! stop-words — that asymmetry is part of the system being reproduced, and
//! it lives in the shared scanner's layering: this crate uses the raw
//! [`pier_vocab::scan`]; PIERSearch adds the stop-word policy on top.
//!
//! Post-interning, matching is sorted-`TermId`-slice intersection (binary
//! search per query term) instead of per-file `HashSet<String>` probes.
//!
//! # Memory layout
//!
//! File metadata lives in a [`ShareCatalog`]: one columnar, immutable copy
//! of every distinct file — names, sizes, and sorted token sets in a flat
//! `TermId` arena indexed by `u32` offsets. A node's [`FileStore`] holds an
//! `Arc` to the catalog plus a `Box<[FileId]>` of the files it shares, so
//! replicating a file onto ten thousand leaves costs 4 bytes per leaf, not
//! a `FileMeta` + token-set clone per leaf. Matching and QRP advertising
//! read through the shared arena. (QRP hash pairs are likewise shared: the
//! process-wide vocab table caches one `(u64, u64)` per interned term — see
//! `pier_vocab::qrp_hashes` — so no per-node hash state exists either.)
//!
//! Sharing is safe because the catalog is read-only after construction: the
//! network only ever *matches against* shares, it never mutates them, and
//! churn takes a node's share offline by dropping the `FileStore` (4-byte
//! ids), never by touching the catalog.

use pier_netsim::HeapSize;
use pier_vocab::{scan, TermId};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Lowercase alphanumeric tokens of a filename ("Led_Zeppelin-IV.mp3" →
/// ["led", "zeppelin", "iv", "mp3"]) — the shared scanner, in string form.
pub use pier_vocab::scan_text as tokenize;

/// One shared file. The name is `Arc`-shared: a `Hit` travelling the
/// reverse path is cloned once per hop and per message chunk, and with a
/// pointer-sized name clone those hops stop allocating — the last string
/// hot spot on the result path (wire-size accounting is unchanged: the
/// retained text and its byte length are identical).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    pub name: Arc<str>,
    pub size: u64,
}

impl FileMeta {
    pub fn new(name: &str, size: u64) -> Self {
        FileMeta { name: Arc::from(name), size }
    }
}

/// Index of a distinct file within a [`ShareCatalog`].
pub type FileId = u32;

/// The process-wide columnar file catalog: one copy of every distinct
/// file's metadata and sorted token set, shared by every [`FileStore`]
/// built from it. Immutable after construction.
#[derive(Debug, Default)]
pub struct ShareCatalog {
    /// One `FileMeta` per distinct file (names are `Arc<str>`, so handing
    /// them out to `Hit`s clones pointers).
    metas: Vec<FileMeta>,
    /// Flat arena of per-file token sets (each sorted, deduplicated).
    token_arena: Vec<TermId>,
    /// `token_off[i]..token_off[i + 1]` is file `i`'s slice of the arena.
    token_off: Vec<u32>,
}

impl ShareCatalog {
    /// Build the catalog from distinct files, scanning each name once.
    pub fn build(files: impl IntoIterator<Item = FileMeta>) -> ShareCatalog {
        let metas: Vec<FileMeta> = files.into_iter().collect();
        let mut token_arena = Vec::new();
        let mut token_off = Vec::with_capacity(metas.len() + 1);
        token_off.push(0u32);
        for f in &metas {
            let mut t = scan(&f.name);
            t.sort_unstable();
            t.dedup();
            token_arena.extend_from_slice(&t);
            let end = u32::try_from(token_arena.len()).expect("token arena exceeds u32 offsets");
            token_off.push(end);
        }
        token_arena.shrink_to_fit();
        ShareCatalog { metas, token_arena, token_off }
    }

    /// The shared empty catalog (what `FileStore::default()` points at), so
    /// shareless nodes — every ultrapeer in the lab — cost no allocation.
    pub fn empty() -> &'static Arc<ShareCatalog> {
        // pier-lint: allow(shard-static): write-once cache of the canonical
        // empty catalog; its value is a constant, so shards can never
        // observe different state through it.
        static EMPTY: OnceLock<Arc<ShareCatalog>> = OnceLock::new();
        EMPTY.get_or_init(|| Arc::new(ShareCatalog::default()))
    }

    /// Number of distinct files.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    pub fn meta(&self, id: FileId) -> &FileMeta {
        &self.metas[id as usize]
    }

    /// File `id`'s distinct name tokens, sorted by `TermId`.
    pub fn tokens(&self, id: FileId) -> &[TermId] {
        let (a, b) = (self.token_off[id as usize], self.token_off[id as usize + 1]);
        &self.token_arena[a as usize..b as usize]
    }

    /// Does file `id` match the query (every term a token of its name)?
    pub fn matches(&self, id: FileId, terms: &[TermId]) -> bool {
        let tokens = self.tokens(id);
        !terms.is_empty() && terms.iter().all(|t| tokens.binary_search(t).is_ok())
    }
}

impl HeapSize for ShareCatalog {
    fn heap_bytes(&self) -> usize {
        self.metas.capacity() * size_of::<FileMeta>()
            + self.metas.iter().map(|m| m.name.heap_bytes()).sum::<usize>()
            + self.token_arena.capacity() * size_of::<TermId>()
            + self.token_off.capacity() * size_of::<u32>()
    }
}

/// A node's share: a `Box<[FileId]>` into a shared [`ShareCatalog`], plus
/// the share-wide sorted token union QRP advertises.
#[derive(Clone, Debug)]
pub struct FileStore {
    catalog: Arc<ShareCatalog>,
    files: Box<[FileId]>,
    /// Distinct tokens across the whole share, sorted — cached once so QRP
    /// refreshes stop re-allocating and re-cloning the full token set.
    all_tokens: Box<[TermId]>,
}

impl Default for FileStore {
    fn default() -> Self {
        FileStore {
            catalog: ShareCatalog::empty().clone(),
            files: Box::default(),
            all_tokens: Box::default(),
        }
    }
}

impl FileStore {
    /// A store owning its own single-node catalog — the construction path
    /// for unit tests and small drivers. Networks whose shares come from a
    /// workload catalog share one [`ShareCatalog`] via [`FileStore::shared`]
    /// instead.
    pub fn new(files: Vec<FileMeta>) -> Self {
        let n = u32::try_from(files.len()).expect("share catalog exceeds u32 file ids");
        let catalog = Arc::new(ShareCatalog::build(files));
        FileStore::shared(catalog, (0..n).collect())
    }

    /// A share of `files` (catalog indices) backed by a shared catalog.
    pub fn shared(catalog: Arc<ShareCatalog>, files: Box<[FileId]>) -> Self {
        let mut all_tokens: Vec<TermId> =
            files.iter().flat_map(|&id| catalog.tokens(id).iter().copied()).collect();
        all_tokens.sort_unstable();
        all_tokens.dedup();
        FileStore { catalog, files, all_tokens: all_tokens.into_boxed_slice() }
    }

    /// The catalog this share reads through.
    pub fn catalog(&self) -> &Arc<ShareCatalog> {
        &self.catalog
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The shared files' metadata, in share order.
    pub fn iter(&self) -> impl Iterator<Item = &FileMeta> + '_ {
        self.files.iter().map(|&id| self.catalog.meta(id))
    }

    /// Owned metadata of the whole share (BrowseHost replies; names are
    /// pointer clones).
    pub fn metas(&self) -> Vec<FileMeta> {
        self.iter().cloned().collect()
    }

    /// All distinct tokens across the share, sorted (what QRP filters
    /// advertise). Cached at construction; O(1) per QRP refresh.
    pub fn all_tokens(&self) -> &[TermId] {
        &self.all_tokens
    }

    /// Files matching a query (every query term must be a filename token).
    pub fn matching(&self, terms: &[TermId]) -> Vec<&FileMeta> {
        if terms.is_empty() {
            return Vec::new();
        }
        self.files
            .iter()
            .filter(|&&id| self.catalog.matches(id, terms))
            .map(|&id| self.catalog.meta(id))
            .collect()
    }

    /// Convenience for drivers/tests: tokenize a query string and match.
    pub fn matching_query(&self, query: &str) -> Vec<&FileMeta> {
        self.matching(&scan(query))
    }

    /// Heap bytes owned by *this node* for its share — the id list and the
    /// token union, not the shared catalog (accounted once per process).
    pub fn own_heap_bytes(&self) -> usize {
        self.files.len() * size_of::<FileId>() + self.all_tokens.len() * size_of::<TermId>()
    }

    /// What the pre-catalog layout would have charged this node for the
    /// same share: a `FileMeta` (with its own `Arc<str>` name allocation)
    /// and a `Box<[TermId]>` token set per file, plus the `Vec` spines and
    /// the token-union cache. This is the "before" of `mem_bench`'s
    /// before-vs-after reduction floor.
    pub fn legacy_heap_bytes(&self) -> usize {
        let per_file: usize = self
            .files
            .iter()
            .map(|&id| {
                let name = &self.catalog.meta(id).name;
                size_of::<FileMeta>() + name.heap_bytes() + size_of_val(self.catalog.tokens(id))
            })
            .sum();
        // Vec<FileMeta> + Vec<Box<[TermId]>> spines, and the old Vec-backed
        // all_tokens cache.
        per_file
            + self.files.len() * size_of::<Box<[TermId]>>()
            + self.all_tokens.len() * size_of::<TermId>()
    }
}

impl HeapSize for FileStore {
    /// Charges only per-node state; the shared catalog is accounted once at
    /// process level, not once per store (see [`FileStore::own_heap_bytes`]).
    fn heap_bytes(&self) -> usize {
        self.own_heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("Led_Zeppelin-Stairway (live).MP3"),
            vec!["led", "zeppelin", "stairway", "live", "mp3"]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("___"), Vec::<String>::new());
        assert_eq!(tokenize("abc123"), vec!["abc123"]);
    }

    #[test]
    fn matching_requires_all_terms() {
        let store = FileStore::new(vec![
            FileMeta::new("led_zeppelin_iv.mp3", 1),
            FileMeta::new("led_astray.avi", 2),
            FileMeta::new("pink_floyd_wall.mp3", 3),
        ]);
        assert_eq!(store.matching_query("led zeppelin").len(), 1);
        assert_eq!(store.matching_query("led").len(), 2);
        assert_eq!(store.matching_query("LED").len(), 2, "case-insensitive");
        assert_eq!(store.matching_query("led floyd").len(), 0);
        assert_eq!(store.matching_query("").len(), 0, "empty query matches nothing");
    }

    #[test]
    fn token_match_not_substring() {
        let store = FileStore::new(vec![FileMeta::new("zeppelins.mp3", 1)]);
        // "zeppelin" is a substring of token "zeppelins" but not a token.
        assert_eq!(store.matching_query("zeppelin").len(), 0);
        assert_eq!(store.matching_query("zeppelins").len(), 1);
    }

    #[test]
    fn all_tokens_dedup_and_sorted() {
        let store = FileStore::new(vec![FileMeta::new("a_b.mp3", 1), FileMeta::new("b_c.mp3", 1)]);
        let tokens = store.all_tokens();
        assert_eq!(tokens.len(), 4); // a, b, c, mp3
        assert!(tokens.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        // The cache holds exactly the union of the per-file sets.
        let mut names = pier_vocab::texts_of(tokens);
        names.sort();
        assert_eq!(names, vec!["a", "b", "c", "mp3"]);
    }

    /// Sorted-slice matching must agree with the HashSet<String> scheme it
    /// replaced, on arbitrary names (see also the property test in
    /// tests/matching_equivalence.rs).
    #[test]
    fn sorted_slice_matches_hashset_reference() {
        let names = ["Some_Song (remix).mp3", "other.track.07.ogg", "Ünïcode-Näme.avi"];
        let store = FileStore::new(names.iter().map(|n| FileMeta::new(n, 1)).collect());
        for q in ["some song", "track 07", "näme", "missing term", ""] {
            let fast: Vec<&str> = store.matching_query(q).iter().map(|f| &*f.name).collect();
            let terms = tokenize(q);
            let slow: Vec<&str> = names
                .iter()
                .filter(|n| {
                    let set: std::collections::HashSet<String> = tokenize(n).into_iter().collect();
                    !terms.is_empty() && terms.iter().all(|t| set.contains(t))
                })
                .copied()
                .collect();
            assert_eq!(fast, slow, "query {q:?}");
        }
    }

    /// A shared-catalog store must behave exactly like a store built from
    /// the same metadata via the single-owner path: same share order, same
    /// matches, same QRP token union.
    #[test]
    fn shared_store_equals_owning_store() {
        let metas: Vec<FileMeta> = ["rare_live_cut.mp3", "common_hit.mp3", "b_side.ogg"]
            .iter()
            .map(|n| FileMeta::new(n, 9))
            .collect();
        let catalog = Arc::new(ShareCatalog::build(metas.clone()));
        let shared = FileStore::shared(catalog, vec![2u32, 0].into_boxed_slice());
        let owning = FileStore::new(vec![metas[2].clone(), metas[0].clone()]);
        assert_eq!(shared.len(), owning.len());
        assert_eq!(shared.metas(), owning.metas(), "share order preserved");
        assert_eq!(shared.all_tokens(), owning.all_tokens());
        for q in ["rare live", "b side", "common", "nothing here"] {
            let a: Vec<&str> = shared.matching_query(q).iter().map(|f| &*f.name).collect();
            let b: Vec<&str> = owning.matching_query(q).iter().map(|f| &*f.name).collect();
            assert_eq!(a, b, "query {q:?}");
        }
    }

    /// The point of the exercise: per-node share state must be a small
    /// fraction of what the per-node `FileMeta` + token-set layout cost.
    #[test]
    fn shared_share_state_is_much_smaller_than_legacy() {
        let metas: Vec<FileMeta> = (0..200)
            .map(|i| FileMeta::new(&format!("artist_{i}_album_{i}_track_{i}.mp3"), 1))
            .collect();
        let catalog = Arc::new(ShareCatalog::build(metas));
        let store = FileStore::shared(catalog, (0..200u32).collect());
        assert!(
            store.legacy_heap_bytes() >= 3 * store.own_heap_bytes(),
            "legacy {} vs own {}",
            store.legacy_heap_bytes(),
            store.own_heap_bytes()
        );
    }

    #[test]
    fn default_store_shares_the_static_empty_catalog() {
        let a = FileStore::default();
        let b = FileStore::default();
        assert!(Arc::ptr_eq(a.catalog(), b.catalog()));
        assert_eq!(a.own_heap_bytes(), 0);
        assert!(a.is_empty() && a.all_tokens().is_empty());
        assert!(a.matching_query("anything").is_empty());
    }
}
