//! Shared-file metadata and Gnutella-side query matching.
//!
//! Matching follows LimeWire semantics: a query matches a file when every
//! query term appears as a *token* of the filename (case-insensitive).
//! Unlike PIERSearch (§3.1 of the paper), plain Gnutella does **not** strip
//! stop-words — that asymmetry is part of the system being reproduced.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One shared file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    pub name: String,
    pub size: u64,
}

impl FileMeta {
    pub fn new(name: &str, size: u64) -> Self {
        FileMeta { name: name.to_string(), size }
    }
}

/// Lowercase alphanumeric tokens of a filename ("Led_Zeppelin-IV.mp3" →
/// ["led", "zeppelin", "iv", "mp3"]).
pub fn tokenize(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in name.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// A node's share: files plus a token index for fast matching.
#[derive(Clone, Debug, Default)]
pub struct FileStore {
    files: Vec<FileMeta>,
    token_sets: Vec<HashSet<String>>,
}

impl FileStore {
    pub fn new(files: Vec<FileMeta>) -> Self {
        let token_sets = files.iter().map(|f| tokenize(&f.name).into_iter().collect()).collect();
        FileStore { files, token_sets }
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    pub fn files(&self) -> &[FileMeta] {
        &self.files
    }

    /// All distinct tokens across the share (what QRP filters advertise).
    pub fn all_tokens(&self) -> HashSet<String> {
        self.token_sets.iter().flatten().cloned().collect()
    }

    /// Files matching a query string (every query token must be a filename
    /// token).
    pub fn matching(&self, query: &str) -> Vec<&FileMeta> {
        let terms = tokenize(query);
        if terms.is_empty() {
            return Vec::new();
        }
        self.files
            .iter()
            .zip(&self.token_sets)
            .filter(|(_, tokens)| terms.iter().all(|t| tokens.contains(t)))
            .map(|(f, _)| f)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("Led_Zeppelin-Stairway (live).MP3"),
            vec!["led", "zeppelin", "stairway", "live", "mp3"]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("___"), Vec::<String>::new());
        assert_eq!(tokenize("abc123"), vec!["abc123"]);
    }

    #[test]
    fn matching_requires_all_terms() {
        let store = FileStore::new(vec![
            FileMeta::new("led_zeppelin_iv.mp3", 1),
            FileMeta::new("led_astray.avi", 2),
            FileMeta::new("pink_floyd_wall.mp3", 3),
        ]);
        assert_eq!(store.matching("led zeppelin").len(), 1);
        assert_eq!(store.matching("led").len(), 2);
        assert_eq!(store.matching("LED").len(), 2, "case-insensitive");
        assert_eq!(store.matching("led floyd").len(), 0);
        assert_eq!(store.matching("").len(), 0, "empty query matches nothing");
    }

    #[test]
    fn token_match_not_substring() {
        let store = FileStore::new(vec![FileMeta::new("zeppelins.mp3", 1)]);
        // "zeppelin" is a substring of token "zeppelins" but not a token.
        assert_eq!(store.matching("zeppelin").len(), 0);
        assert_eq!(store.matching("zeppelins").len(), 1);
    }

    #[test]
    fn all_tokens_dedup() {
        let store = FileStore::new(vec![FileMeta::new("a_b.mp3", 1), FileMeta::new("b_c.mp3", 1)]);
        let tokens = store.all_tokens();
        assert_eq!(tokens.len(), 4); // a, b, c, mp3
    }
}
