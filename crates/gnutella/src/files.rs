//! Shared-file metadata and Gnutella-side query matching.
//!
//! Matching follows LimeWire semantics: a query matches a file when every
//! query term appears as a *token* of the filename (case-insensitive).
//! Unlike PIERSearch (§3.1 of the paper), plain Gnutella does **not** strip
//! stop-words — that asymmetry is part of the system being reproduced, and
//! it lives in the shared scanner's layering: this crate uses the raw
//! [`pier_vocab::scan`]; PIERSearch adds the stop-word policy on top.
//!
//! Post-interning, matching is sorted-`TermId`-slice intersection (binary
//! search per query term) instead of per-file `HashSet<String>` probes.

use pier_vocab::{scan, TermId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Lowercase alphanumeric tokens of a filename ("Led_Zeppelin-IV.mp3" →
/// ["led", "zeppelin", "iv", "mp3"]) — the shared scanner, in string form.
pub use pier_vocab::scan_text as tokenize;

/// One shared file. The name is `Arc`-shared: a `Hit` travelling the
/// reverse path is cloned once per hop and per message chunk, and with a
/// pointer-sized name clone those hops stop allocating — the last string
/// hot spot on the result path (wire-size accounting is unchanged: the
/// retained text and its byte length are identical).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    pub name: Arc<str>,
    pub size: u64,
}

impl FileMeta {
    pub fn new(name: &str, size: u64) -> Self {
        FileMeta { name: Arc::from(name), size }
    }
}

/// A node's share: files plus a sorted term-id index for fast matching.
#[derive(Clone, Debug, Default)]
pub struct FileStore {
    files: Vec<FileMeta>,
    /// Per file, its distinct name tokens, sorted by id.
    token_sets: Vec<Box<[TermId]>>,
    /// Distinct tokens across the whole share, sorted — cached once so QRP
    /// refreshes stop re-allocating and re-cloning the full token set.
    all_tokens: Vec<TermId>,
}

impl FileStore {
    pub fn new(files: Vec<FileMeta>) -> Self {
        let token_sets: Vec<Box<[TermId]>> = files
            .iter()
            .map(|f| {
                let mut t = scan(&f.name);
                t.sort_unstable();
                t.dedup();
                t.into_boxed_slice()
            })
            .collect();
        let mut all_tokens: Vec<TermId> =
            token_sets.iter().flat_map(|s| s.iter().copied()).collect();
        all_tokens.sort_unstable();
        all_tokens.dedup();
        FileStore { files, token_sets, all_tokens }
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    pub fn files(&self) -> &[FileMeta] {
        &self.files
    }

    /// All distinct tokens across the share, sorted (what QRP filters
    /// advertise). Cached at construction; O(1) per QRP refresh.
    pub fn all_tokens(&self) -> &[TermId] {
        &self.all_tokens
    }

    /// Files matching a query (every query term must be a filename token).
    pub fn matching(&self, terms: &[TermId]) -> Vec<&FileMeta> {
        if terms.is_empty() {
            return Vec::new();
        }
        self.files
            .iter()
            .zip(&self.token_sets)
            .filter(|(_, tokens)| terms.iter().all(|t| tokens.binary_search(t).is_ok()))
            .map(|(f, _)| f)
            .collect()
    }

    /// Convenience for drivers/tests: tokenize a query string and match.
    pub fn matching_query(&self, query: &str) -> Vec<&FileMeta> {
        self.matching(&scan(query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("Led_Zeppelin-Stairway (live).MP3"),
            vec!["led", "zeppelin", "stairway", "live", "mp3"]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("___"), Vec::<String>::new());
        assert_eq!(tokenize("abc123"), vec!["abc123"]);
    }

    #[test]
    fn matching_requires_all_terms() {
        let store = FileStore::new(vec![
            FileMeta::new("led_zeppelin_iv.mp3", 1),
            FileMeta::new("led_astray.avi", 2),
            FileMeta::new("pink_floyd_wall.mp3", 3),
        ]);
        assert_eq!(store.matching_query("led zeppelin").len(), 1);
        assert_eq!(store.matching_query("led").len(), 2);
        assert_eq!(store.matching_query("LED").len(), 2, "case-insensitive");
        assert_eq!(store.matching_query("led floyd").len(), 0);
        assert_eq!(store.matching_query("").len(), 0, "empty query matches nothing");
    }

    #[test]
    fn token_match_not_substring() {
        let store = FileStore::new(vec![FileMeta::new("zeppelins.mp3", 1)]);
        // "zeppelin" is a substring of token "zeppelins" but not a token.
        assert_eq!(store.matching_query("zeppelin").len(), 0);
        assert_eq!(store.matching_query("zeppelins").len(), 1);
    }

    #[test]
    fn all_tokens_dedup_and_sorted() {
        let store = FileStore::new(vec![FileMeta::new("a_b.mp3", 1), FileMeta::new("b_c.mp3", 1)]);
        let tokens = store.all_tokens();
        assert_eq!(tokens.len(), 4); // a, b, c, mp3
        assert!(tokens.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        // The cache holds exactly the union of the per-file sets.
        let mut names = pier_vocab::texts_of(tokens);
        names.sort();
        assert_eq!(names, vec!["a", "b", "c", "mp3"]);
    }

    /// Sorted-slice matching must agree with the HashSet<String> scheme it
    /// replaced, on arbitrary names (see also the property test in
    /// tests/matching_equivalence.rs).
    #[test]
    fn sorted_slice_matches_hashset_reference() {
        let names = ["Some_Song (remix).mp3", "other.track.07.ogg", "Ünïcode-Näme.avi"];
        let store = FileStore::new(names.iter().map(|n| FileMeta::new(n, 1)).collect());
        for q in ["some song", "track 07", "näme", "missing term", ""] {
            let fast: Vec<&str> = store.matching_query(q).iter().map(|f| &*f.name).collect();
            let terms = tokenize(q);
            let slow: Vec<&str> = names
                .iter()
                .filter(|n| {
                    let set: std::collections::HashSet<String> = tokenize(n).into_iter().collect();
                    !terms.is_empty() && terms.iter().all(|t| set.contains(t))
                })
                .copied()
                .collect();
            assert_eq!(fast, slow, "query {q:?}");
        }
    }
}
