//! End-to-end search behaviour in a spawned Gnutella network: the
//! popular-fast / rare-slow asymmetry that motivates the whole paper.

use pier_gnutella::{
    spawn, FileMeta, GnutellaMsg, LeafNode, QueryOrigin, Topology, TopologyConfig, UltrapeerNode,
};
use pier_netsim::{NodeId, Sim, SimConfig, SimDuration, UniformLatency};

/// A network where `popular.mp3` has one replica per 3 leaves and
/// `rare_gem.mp3` exactly one replica placed far from the querier.
fn build_network(
    seed: u64,
    ups: usize,
    leaves: usize,
) -> (Sim<GnutellaMsg>, pier_gnutella::GnutellaHandles) {
    let cfg = SimConfig::with_seed(seed)
        .latency(UniformLatency::new(SimDuration::from_millis(20), SimDuration::from_millis(80)));
    let mut sim = Sim::new(cfg);
    let topo = Topology::generate(&TopologyConfig {
        ultrapeers: ups,
        leaves,
        old_style_fraction: 0.25,
        leaf_ups: 2,
        seed,
    });
    let up_files = vec![Vec::new(); ups];
    let mut leaf_files: Vec<Vec<FileMeta>> = (0..leaves)
        .map(|j| {
            let mut files = vec![FileMeta::new(&format!("filler_{j}.bin"), 10)];
            if j % 3 == 0 {
                files.push(FileMeta::new("popular_hit_song.mp3", 4000));
            }
            files
        })
        .collect();
    // One rare replica, on the very last leaf.
    leaf_files[leaves - 1].push(FileMeta::new("rare_gem_recording.mp3", 999));
    let handles = spawn(&mut sim, &topo, up_files, leaf_files);
    (sim, handles)
}

#[test]
fn popular_query_reaches_target_fast() {
    let (mut sim, handles) = build_network(31, 40, 800);
    sim.run_for(SimDuration::from_secs(2)); // QRP propagation

    let vantage = handles.ups[7];
    let guid = sim.with_actor_ctx::<UltrapeerNode, _>(vantage, |up, ctx| {
        let mut net = pier_gnutella::CtxGnutellaNet { ctx };
        up.core.start_query(&mut net, "popular hit song", QueryOrigin::Driver)
    });
    sim.run_for(SimDuration::from_secs(120));

    let record = sim.actor::<UltrapeerNode>(vantage).core.query_record(guid).unwrap().clone();
    assert!(record.finished);
    assert!(
        record.hits.len() >= record.probes_sent as usize || record.hits.len() >= 150,
        "popular content must return plenty of results, got {}",
        record.hits.len()
    );
    let first = record.first_hit_at.expect("popular query gets hits");
    let latency = (first - record.issued_at).as_secs_f64();
    assert!(latency < 5.0, "popular first hit should be fast, took {latency}s");
    // Every hit really matches.
    for h in &record.hits {
        assert_eq!(&*h.file.name, "popular_hit_song.mp3");
    }
}

#[test]
fn rare_query_finds_single_replica_slowly_or_never() {
    // Large enough that the TTL-1 probe covers ~10% of ultrapeers: rare
    // items must usually wait for paced deep probes (or be missed).
    let (mut sim, handles) = build_network(32, 120, 1500);
    sim.run_for(SimDuration::from_secs(2));

    // Query from every 15th ultrapeer; compute how long rare lookups take.
    let mut latencies = Vec::new();
    let mut misses = 0;
    let vantages: Vec<NodeId> = handles.ups.iter().copied().step_by(15).collect();
    let mut guids = Vec::new();
    for &v in &vantages {
        let guid = sim.with_actor_ctx::<UltrapeerNode, _>(v, |up, ctx| {
            let mut net = pier_gnutella::CtxGnutellaNet { ctx };
            up.core.start_query(&mut net, "rare gem recording", QueryOrigin::Driver)
        });
        guids.push((v, guid));
    }
    sim.run_for(SimDuration::from_secs(240));

    for (v, guid) in guids {
        let record = sim.actor::<UltrapeerNode>(v).core.query_record(guid).unwrap().clone();
        assert!(record.finished, "dynamic query must terminate");
        match record.first_hit_at {
            Some(t) => {
                // Replicas are unique: at most one distinct host.
                let hosts: std::collections::HashSet<_> =
                    record.hits.iter().map(|h| h.host).collect();
                assert_eq!(hosts.len(), 1);
                latencies.push((t - record.issued_at).as_secs_f64());
            }
            None => misses += 1,
        }
    }
    // The whole point of the paper: rare items are slow and/or missed.
    let found = latencies.len();
    assert!(found + misses == vantages.len());
    if !latencies.is_empty() {
        let avg = latencies.iter().sum::<f64>() / latencies.len() as f64;
        assert!(
            avg > 1.0 || misses > 0,
            "rare lookups should be slow or lossy (avg {avg}s, misses {misses})"
        );
    }
}

#[test]
fn leaf_issued_search_streams_results() {
    let (mut sim, handles) = build_network(33, 30, 600);
    sim.run_for(SimDuration::from_secs(2));

    let leaf = handles.leaves[5];
    let qid = sim.with_actor_ctx::<LeafNode, _>(leaf, |node, ctx| {
        let mut net = pier_gnutella::CtxGnutellaNet { ctx };
        node.core.start_search(&mut net, "popular hit song")
    });
    sim.run_for(SimDuration::from_secs(150));

    let node = sim.actor::<LeafNode>(leaf);
    let s = node.core.search(qid).unwrap();
    assert!(s.done, "ultrapeer must report completion to the leaf");
    assert!(!s.hits.is_empty(), "popular content must be found");
    assert!(s.first_hit_at.is_some());
}

#[test]
fn flood_message_budget_is_bounded_by_duplicate_suppression() {
    let (mut sim, handles) = build_network(34, 40, 400);
    sim.run_for(SimDuration::from_secs(2));
    let before = sim.metrics().counter("gnutella.query").count;

    sim.with_actor_ctx::<UltrapeerNode, _>(handles.ups[0], |up, ctx| {
        let mut net = pier_gnutella::CtxGnutellaNet { ctx };
        up.core.start_query(&mut net, "no such thing anywhere", QueryOrigin::Driver)
    });
    sim.run_for(SimDuration::from_secs(200));

    let sent = sim.metrics().counter("gnutella.query").count - before;
    let dupes = sim.metrics().counter("gnutella.duplicate_query").count;
    // With 40 ultrapeers, total query transmissions are bounded by
    // (probes + relays); each node relays a GUID at most once, so sends are
    // at most N * max_degree + probe volume.
    assert!(sent > 40, "the query must actually flood, sent {sent}");
    assert!(sent < 40 * 40, "duplicate suppression must bound the flood, sent {sent}");
    assert!(dupes > 0, "redundant paths must produce (suppressed) duplicates");
}
