//! Property tests pinning the interning refactor to the behaviour it
//! replaced:
//!
//! * the shared scanner (`pier_vocab::scan`) ≡ the old
//!   `gnutella::files::tokenize` (reimplemented here as the reference);
//! * scanner + indexing policy ≡ the old `piersearch::tokenize::keywords`
//!   (stop-words out, short tokens out, first-occurrence dedup);
//! * sorted-`TermId`-slice matching ≡ the old per-file `HashSet<String>`
//!   matching, on arbitrary filenames and queries.

use pier_gnutella::{FileMeta, FileStore};
use pier_vocab::{policy, scan, texts_of};
use proptest::prelude::*;
use std::collections::HashSet;

/// The old `gnutella::files::tokenize`, verbatim, as the reference.
fn legacy_tokenize(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in name.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The old `piersearch::tokenize::keywords`, verbatim, as the reference.
fn legacy_keywords(name: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut cur = String::new();
    let push = |s: &mut String, out: &mut Vec<String>| {
        if s.len() >= 2 && !policy::is_stop_word(s) && !out.iter().any(|t| t == s) {
            out.push(std::mem::take(s));
        } else {
            s.clear();
        }
    };
    for ch in name.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else {
            push(&mut cur, &mut out);
        }
    }
    push(&mut cur, &mut out);
    out
}

/// The old `FileStore` matcher: tokenize query, then per-file
/// `HashSet<String>` membership for every term.
fn legacy_matching(names: &[String], query: &str) -> Vec<String> {
    let terms = legacy_tokenize(query);
    names
        .iter()
        .filter(|n| {
            let set: HashSet<String> = legacy_tokenize(n).into_iter().collect();
            !terms.is_empty() && terms.iter().all(|t| set.contains(t))
        })
        .cloned()
        .collect()
}

proptest! {
    #[test]
    fn shared_scanner_equals_legacy_tokenize(name in any::<String>()) {
        prop_assert_eq!(texts_of(&scan(&name)), legacy_tokenize(&name));
    }

    #[test]
    fn policy_keywords_equal_legacy_keywords(name in any::<String>()) {
        prop_assert_eq!(texts_of(&policy::keywords(&name)), legacy_keywords(&name));
    }

    /// Structured filenames too (the arbitrary-String case rarely produces
    /// multi-token names): word-ish segments joined by separators.
    #[test]
    fn policy_keywords_equal_legacy_on_filenames(
        parts in proptest::collection::vec("[a-zA-Z0-9]{0,6}", 0..6),
        ext in "(mp3|avi|x|zip|the|song)",
    ) {
        let name = format!("{}.{}", parts.join("_"), ext);
        prop_assert_eq!(texts_of(&policy::keywords(&name)), legacy_keywords(&name));
        prop_assert_eq!(texts_of(&scan(&name)), legacy_tokenize(&name));
    }

    #[test]
    fn sorted_slice_matching_equals_hashset_matching(
        names in proptest::collection::vec("[a-z0-9_ .]{0,12}", 0..8),
        query in "[a-z0-9_ ]{0,10}",
    ) {
        let store = FileStore::new(names.iter().map(|n| FileMeta::new(n, 1)).collect());
        let fast: Vec<String> =
            store.matching_query(&query).iter().map(|f| f.name.to_string()).collect();
        prop_assert_eq!(fast, legacy_matching(&names, &query));
    }

    #[test]
    fn sorted_slice_matching_equals_hashset_on_arbitrary_strings(
        names in proptest::collection::vec(any::<String>(), 0..6),
        query in any::<String>(),
    ) {
        let store = FileStore::new(names.iter().map(|n| FileMeta::new(n, 1)).collect());
        let fast: Vec<String> =
            store.matching_query(&query).iter().map(|f| f.name.to_string()).collect();
        prop_assert_eq!(fast, legacy_matching(&names, &query));
    }
}
