//! Property test: a `FileStore` sharing the process-wide `ShareCatalog`
//! is observationally identical to one owning its `FileMeta`s outright —
//! same iteration order, same token union, same query-matching results.
//! (The columnar layout may only change bytes, never behavior.)

use pier_gnutella::{FileMeta, FileStore, ShareCatalog};
use proptest::prelude::*;
use std::sync::Arc;

/// Small word pool, so shares collide and queries hit.
const WORDS: [&str; 7] = ["alpha", "beta", "gamma", "delta", "live", "mix", "remix"];
const EXTS: [&str; 3] = ["mp3", "avi", "zip"];

/// Filenames as (word indices, extension index), rendered at use.
fn name_strategy() -> impl Strategy<Value = String> {
    (prop::collection::vec(0usize..WORDS.len(), 1..5), 0usize..EXTS.len()).prop_map(|(ws, ext)| {
        let words: Vec<&str> = ws.iter().map(|&w| WORDS[w]).collect();
        format!("{}.{}", words.join("_"), EXTS[ext])
    })
}

fn flat(metas: Vec<&FileMeta>) -> Vec<(Arc<str>, u64)> {
    metas.into_iter().map(|m| (m.name.clone(), m.size)).collect()
}

proptest! {
    #[test]
    fn shared_view_equals_owning_store(
        names in prop::collection::vec(name_strategy(), 1..40),
        picks in prop::collection::vec(0usize..1_000, 0..25),
        queries in prop::collection::vec(name_strategy(), 0..8),
    ) {
        let metas: Vec<FileMeta> = names
            .iter()
            .enumerate()
            .map(|(i, n)| FileMeta::new(n, 1_000 + i as u64))
            .collect();
        let catalog = Arc::new(ShareCatalog::build(metas.iter().cloned()));
        // An arbitrary leaf view: any multiset of catalog files, any order.
        let ids: Vec<u32> = picks.iter().map(|&p| (p % names.len()) as u32).collect();

        let owning = FileStore::new(ids.iter().map(|&i| metas[i as usize].clone()).collect());
        let shared = FileStore::shared(Arc::clone(&catalog), ids.into_boxed_slice());

        prop_assert_eq!(owning.len(), shared.len());
        prop_assert_eq!(owning.is_empty(), shared.is_empty());
        // Iteration order, the QRP token union, and query results must
        // all be indistinguishable between the two layouts.
        prop_assert_eq!(flat(owning.iter().collect()), flat(shared.iter().collect()));
        prop_assert_eq!(owning.all_tokens(), shared.all_tokens());
        for q in &queries {
            prop_assert_eq!(flat(owning.matching_query(q)), flat(shared.matching_query(q)));
        }
    }
}
