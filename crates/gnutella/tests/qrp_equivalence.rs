//! Property tests pinning the sparse QRP representation to the dense
//! bit tables it replaced: a filter built from arbitrary term sets must
//! answer every probe identically before and after `promote_to_dense`,
//! a hoisted [`QrpProbe`] must agree with per-term matching on either
//! representation (and across geometry mismatches), and a Bloom filter's
//! one hard guarantee — no false negatives — must hold for every
//! inserted term. These are the semantics the golden determinism pins
//! ride on: if sparse and dense ever diverge, message counts shift.

use pier_gnutella::{QrpFilter, QrpProbe, Terms};
use proptest::prelude::*;

/// Build one sparse and one (force-promoted) dense filter from the same
/// term names. The sparse side is only promoted by its density
/// heuristic, so small term sets keep it sparse — asserted below.
fn both_planes(names: &[String]) -> (QrpFilter, QrpFilter) {
    let mut sparse = QrpFilter::with_defaults();
    for n in names {
        sparse.insert(n);
    }
    let mut dense = sparse.clone();
    dense.promote_to_dense();
    (sparse, dense)
}

proptest! {
    /// Representation is invisible: equality, content hash, wire size,
    /// population count, and every single-term probe agree between the
    /// sparse filter and its promoted copy.
    #[test]
    fn sparse_equals_promoted_dense(
        names in proptest::collection::vec("[a-z0-9]{2,8}", 0..40),
        probes in proptest::collection::vec("[a-z0-9]{2,8}", 0..20),
    ) {
        let (sparse, dense) = both_planes(&names);
        prop_assert!(sparse.is_sparse(), "40 terms × k=2 stays far under the density threshold");
        prop_assert!(!dense.is_sparse());
        prop_assert_eq!(&sparse, &dense);
        prop_assert_eq!(sparse.content_hash(), dense.content_hash());
        prop_assert_eq!(sparse.wire_size(), dense.wire_size());
        prop_assert_eq!(sparse.count_ones(), dense.count_ones());
        for p in &probes {
            prop_assert!(sparse.contains(p) == dense.contains(p), "probe {:?} diverged", p);
        }
    }

    /// A Bloom filter never lies about membership: every inserted term
    /// is contained, and any query drawn from the inserted set matches,
    /// on both representations.
    #[test]
    fn no_false_negatives(
        names in proptest::collection::vec("[a-z0-9]{2,8}", 1..40),
        pick in proptest::collection::vec(any::<u32>(), 1..5),
    ) {
        let (sparse, dense) = both_planes(&names);
        for n in &names {
            prop_assert!(sparse.contains(n));
            prop_assert!(dense.contains(n));
        }
        let query: Vec<String> =
            pick.iter().map(|&i| names[i as usize % names.len()].clone()).collect();
        let terms = Terms::from_text(&query.join(" "));
        prop_assert!(sparse.matches_all(&terms));
        prop_assert!(dense.matches_all(&terms));
    }

    /// The hoisted probe is a pure optimization: `matches_probe` equals
    /// `matches_all` on both representations, whether the probe's
    /// geometry matches the filter's (position fast path) or not
    /// (stored-hash fallback).
    #[test]
    fn probe_equals_per_term_matching(
        names in proptest::collection::vec("[a-z0-9]{2,8}", 0..40),
        query in "[a-z0-9 ]{0,30}",
    ) {
        let (sparse, dense) = both_planes(&names);
        let terms = Terms::from_text(&query);
        let probe = QrpProbe::with_defaults(&terms);
        prop_assert_eq!(sparse.matches_probe(&probe), sparse.matches_all(&terms));
        prop_assert_eq!(dense.matches_probe(&probe), dense.matches_all(&terms));

        let mut other = QrpFilter::new(QrpFilter::DEFAULT_BITS / 2, QrpFilter::DEFAULT_HASHES);
        for n in &names {
            other.insert(n);
        }
        prop_assert_eq!(other.matches_probe(&probe), other.matches_all(&terms));
    }
}
