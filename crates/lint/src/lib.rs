#![forbid(unsafe_code)]
//! `pier-lint` — workspace determinism & shard-safety static analysis.
//!
//! The whole value of this reproduction rests on bit-identical
//! determinism: golden pins in `tests/determinism.rs`, shard-count
//! independence (PR 6), jobs-independence (PR 3). The bug class that
//! threatens it — unordered iteration, ambient clocks/entropy,
//! process-wide mutable statics, silent narrowing casts in arena code —
//! kept being caught by hand-audit luck (PR 3, PR 4). This crate catches
//! it mechanically at CI time.
//!
//! The analyzer is a source-level, token-stream pass over every
//! `crates/*/src` file, built on its own small comment/string/raw-string
//! aware lexer ([`lexer`]) — the build environment is offline (no `syn`),
//! matching how `vendor/serde_derive` hand-rolls its parsing. The lint
//! catalog and the per-crate sets live in [`config`]; suppressions are
//! inline `// pier-lint: allow(<rule>): <reason>` annotations
//! ([`annotations`]) whose reasons are mandatory and whose staleness is
//! itself a finding.
//!
//! Run it as `cargo run -p pier-lint -- [--deny] [--json]`, or from tests
//! via [`analyze_workspace`].

pub mod annotations;
pub mod config;
pub mod lexer;
pub mod passes;
pub mod report;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use config::CrateRules;
use passes::FileCtx;
use report::{Finding, Report, Rule};

/// One source file presented to the analyzer (in-memory so tests can
/// feed fixtures without touching disk).
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Crate directory name under `crates/` (e.g. `gnutella`).
    pub crate_dir: String,
    /// Crate-relative path (e.g. `src/ultrapeer.rs`).
    pub rel_path: String,
    pub src: String,
}

impl SourceFile {
    pub fn new(crate_dir: &str, rel_path: &str, src: &str) -> Self {
        SourceFile {
            crate_dir: crate_dir.to_string(),
            rel_path: rel_path.to_string(),
            src: src.to_string(),
        }
    }

    fn workspace_path(&self) -> String {
        format!("crates/{}/{}", self.crate_dir, self.rel_path)
    }

    /// Crate root files must carry `#![forbid(unsafe_code)]` when the
    /// crate has no unsafe: the lib root plus every bin root.
    fn is_crate_root(&self) -> bool {
        self.rel_path == "src/lib.rs"
            || self.rel_path == "src/main.rs"
            || (self.rel_path.starts_with("src/bin/") && self.rel_path.ends_with(".rs"))
    }
}

/// Analyze a set of files under a rules map. This is the whole pipeline:
/// lex → test-mask → annotations → per-file passes → workspace passes
/// (UNSAFE-AUDIT, unused/malformed annotations).
pub fn analyze_files(
    files: &[SourceFile],
    rules_map: &BTreeMap<&'static str, CrateRules>,
) -> Report {
    // A crate missing from the config gets the strictest rule set: new
    // crates are linted hard until someone names their lint set.
    let strictest = CrateRules {
        det_iter: true,
        det_clock: true,
        det_clock_allow_paths: &[],
        det_entropy: true,
        shard_static: true,
        metric_raw: true,
        cast_narrow_paths: &[],
        shard_static_allow: &[],
    };

    let mut rep = Report::default();
    // crate -> (unsafe count, roots missing the forbid attribute).
    let mut per_crate: BTreeMap<String, (usize, Vec<(String, bool)>)> = BTreeMap::new();

    for f in files {
        let rules = rules_map.get(f.crate_dir.as_str()).unwrap_or(&strictest);
        let lexed = lexer::lex(&f.src);
        let mask = lexer::test_mask(&lexed.toks);
        let mut ann = annotations::parse(&lexed.comments);
        ann.resolve_targets(&lexed.toks);

        let path = f.workspace_path();
        let ctx = FileCtx {
            crate_dir: &f.crate_dir,
            path: &path,
            rel_path: &f.rel_path,
            toks: &lexed.toks,
            mask: &mask,
        };
        passes::run_all(&ctx, rules, &mut ann, &mut rep.findings);

        // Annotation hygiene.
        for (line, problem) in &ann.malformed {
            rep.findings.push(Finding {
                rule: Rule::BadAllow,
                path: path.clone(),
                line: *line,
                msg: problem.clone(),
            });
        }
        for a in &ann.allows {
            if a.used {
                rep.allows_used.push((path.clone(), a.line, a.rule, a.reason.clone()));
            } else {
                rep.findings.push(Finding {
                    rule: Rule::UnusedAllow,
                    path: path.clone(),
                    line: a.line,
                    msg: format!(
                        "allow({}) suppresses nothing here; remove it (stale \
                         suppressions hide future regressions)",
                        a.rule.id()
                    ),
                });
            }
        }

        // UNSAFE-AUDIT bookkeeping.
        let entry = per_crate.entry(f.crate_dir.clone()).or_default();
        entry.0 += passes::count_unsafe(&lexed.toks);
        if f.is_crate_root() {
            entry.1.push((path.clone(), passes::has_forbid_unsafe(&lexed.toks)));
        }
        rep.files_scanned += 1;
    }

    // UNSAFE-AUDIT: a crate with zero unsafe must pin that down with
    // `#![forbid(unsafe_code)]` on every crate root, so future unsafe
    // requires an explicit, reviewed opt-out.
    for (krate, (count, roots)) in &per_crate {
        rep.unsafe_counts.insert(krate.clone(), *count);
        if *count == 0 {
            for (root_path, has_forbid) in roots {
                if !has_forbid {
                    rep.findings.push(Finding {
                        rule: Rule::UnsafeAudit,
                        path: root_path.clone(),
                        line: 1,
                        msg: format!(
                            "crate `{krate}` contains no unsafe code but this crate \
                             root lacks `#![forbid(unsafe_code)]`"
                        ),
                    });
                }
            }
        }
    }

    rep.sort();
    rep
}

/// Convenience for fixture tests: analyze one in-memory file under the
/// workspace rules for `crate_dir`.
pub fn analyze_source(crate_dir: &str, rel_path: &str, src: &str) -> Report {
    analyze_files(&[SourceFile::new(crate_dir, rel_path, src)], &config::workspace_rules())
}

/// Walk `<root>/crates/*/src/**/*.rs` and analyze everything under the
/// workspace rules. `root` is the workspace root (the directory holding
/// `crates/`). File order is sorted, so reports are byte-stable.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    crate_dirs.sort();
    for crate_dir in &crate_dirs {
        let src_dir = crates_dir.join(crate_dir).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&src_dir, &mut paths)?;
        paths.sort();
        for p in paths {
            let rel = format!(
                "src/{}",
                p.strip_prefix(&src_dir)
                    .expect("collected under src_dir")
                    .to_string_lossy()
                    .replace('\\', "/")
            );
            files.push(SourceFile {
                crate_dir: crate_dir.clone(),
                rel_path: rel,
                src: std::fs::read_to_string(&p)?,
            });
        }
    }
    Ok(analyze_files(&files, &config::workspace_rules()))
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Locate the workspace root from a crate's manifest dir (used by the
/// bin and the tier-1 test; `crates/lint` → two levels up).
pub fn workspace_root_from(manifest_dir: &str) -> std::path::PathBuf {
    Path::new(manifest_dir)
        .join("..")
        .join("..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(manifest_dir).join("..").join(".."))
}
