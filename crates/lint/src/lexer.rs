//! A small Rust lexer for token-level static analysis.
//!
//! The build environment is offline (no `syn`), so — like
//! `vendor/serde_derive` — the analyzer hand-rolls exactly the slice of
//! lexing it needs: enough to never mistake the *inside* of a comment,
//! string, raw string, byte string, or char literal for code, and to
//! tell a lifetime tick (`'a`) from a char literal (`'a'`). Everything
//! else (numbers, punctuation) is kept deliberately rough; the passes
//! only match identifier/punct sequences and line numbers.

/// Token classes the passes distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`static`, `as`, `for`, `HashMap`, ...).
    Ident,
    /// Lifetime tick, e.g. `'a`, `'static` (one token, tick included).
    Lifetime,
    /// Numeric literal (integers and floats, suffix included).
    Num,
    /// String-ish literal: `"..."`, `r#"..."#`, `b"..."`, `br"..."`.
    Str,
    /// Char-ish literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Single punctuation character (`.`, `:`, `<`, `!`, `#`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A line comment captured during lexing (`//...`, text without the
/// leading slashes), used for `pier-lint: allow(...)` annotations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus the captured line comments.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex `src` into tokens + comments. Never panics on malformed input:
/// unterminated literals simply run to end-of-file (the workspace is
/// expected to compile, so this only matters for fuzzed fixtures).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    // Count newlines in b[from..to] into `line`.
    let bump = |line: &mut u32, b: &[char], from: usize, to: usize| {
        *line += b[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && (b[i + 1] == '/' || b[i + 1] == '*') {
            if b[i + 1] == '/' {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment { line, text: b[start..j].iter().collect() });
                i = j; // the '\n' (or EOF) is handled by the whitespace arm
            } else {
                // Nested block comment.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                bump(&mut line, &b, i, j.min(n));
                i = j;
            }
            continue;
        }
        // Raw strings / raw identifiers: r"...", r#"..."#, r#ident.
        // Byte flavors: b"...", b'x', br"...", br#"..."#.
        if c == 'r' || c == 'b' {
            let (raw_at, quote_at) = if c == 'r' {
                (i, i + 1)
            } else if i + 1 < n && b[i + 1] == 'r' {
                (i + 1, i + 2)
            } else {
                (usize::MAX, i + 1)
            };
            if raw_at != usize::MAX {
                // Possible raw string: skip hashes, then expect a quote.
                let mut j = quote_at;
                while j < n && b[j] == '#' {
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    let hashes = j - quote_at;
                    let start_line = line;
                    let mut k = j + 1;
                    'raw: while k < n {
                        if b[k] == '"' {
                            let mut h = 0;
                            while h < hashes && k + 1 + h < n && b[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break 'raw;
                            }
                        }
                        k += 1;
                    }
                    bump(&mut line, &b, i, k.min(n));
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: b[i..k.min(n)].iter().collect(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
                if c == 'r' && quote_at < n && b[quote_at] == '#' {
                    // Raw identifier r#ident: lex as the bare identifier.
                    let mut k = quote_at + 1;
                    while k < n && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: b[quote_at + 1..k].iter().collect(),
                        line,
                    });
                    i = k;
                    continue;
                }
            }
            if c == 'b' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '\'') {
                // b"..." / b'x': delegate to the string/char arms below by
                // lexing from the quote and prefixing the text.
                let quote = b[i + 1];
                let (tok, next) = lex_quoted(&b, i + 1, quote, &mut line);
                out.toks.push(Tok {
                    kind: tok.kind,
                    text: format!("b{}", tok.text),
                    line: tok.line,
                });
                i = next;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.toks.push(Tok { kind: TokKind::Ident, text: b[i..j].iter().collect(), line });
            i = j;
            continue;
        }
        // Numbers (rough: good enough to skip past them without eating `..`).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (is_ident_continue(b[j]) || b[j] == '.') {
                if b[j] == '.' {
                    // Don't eat ranges (`0..n`) or method calls (`1.max(x)`).
                    if j + 1 < n && (b[j + 1] == '.' || is_ident_start(b[j + 1])) {
                        break;
                    }
                }
                // `1e-3` / `1E+9` exponents.
                if (b[j] == 'e' || b[j] == 'E')
                    && j + 1 < n
                    && (b[j + 1] == '+' || b[j + 1] == '-')
                    && j + 2 < n
                    && b[j + 2].is_ascii_digit()
                {
                    j += 2;
                }
                j += 1;
            }
            out.toks.push(Tok { kind: TokKind::Num, text: b[i..j].iter().collect(), line });
            i = j;
            continue;
        }
        // Strings.
        if c == '"' {
            let (tok, next) = lex_quoted(&b, i, '"', &mut line);
            out.toks.push(tok);
            i = next;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && is_ident_start(b[i + 1]) {
                // Scan the ident run; a closing tick makes it a char ('a'),
                // otherwise it's a lifetime ('a, 'static).
                let mut j = i + 2;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == '\'' && j == i + 2 {
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: b[i..=j].iter().collect(),
                        line,
                    });
                    i = j + 1;
                } else {
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
                continue;
            }
            // '\n', '\'', '\u{1F600}', or a non-ident char like '→'.
            let (tok, next) = lex_quoted(&b, i, '\'', &mut line);
            out.toks.push(tok);
            i = next;
            continue;
        }
        // Everything else: single-char punct.
        out.toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        if c == '\n' {
            line += 1;
        }
        i += 1;
    }
    out
}

/// Lex a quoted literal starting at `b[start] == quote`, honoring `\`
/// escapes. Returns the token and the index just past the closing quote.
fn lex_quoted(b: &[char], start: usize, quote: char, line: &mut u32) -> (Tok, usize) {
    let n = b.len();
    let start_line = *line;
    let mut j = start + 1;
    while j < n {
        if b[j] == '\\' {
            j += 2;
            continue;
        }
        if b[j] == quote {
            j += 1;
            break;
        }
        if b[j] == '\n' {
            *line += 1;
        }
        j += 1;
    }
    let j = j.min(n);
    let kind = if quote == '\'' { TokKind::Char } else { TokKind::Str };
    (Tok { kind, text: b[start..j].iter().collect(), line: start_line }, j)
}

/// Compute a per-token mask of `#[cfg(test)]` / `#[test]` regions.
///
/// `mask[i] == true` means token `i` is inside test-only code: the
/// determinism passes skip it (test drivers may iterate hash maps or use
/// wall clocks freely — they never run inside the simulation).
///
/// Recognized shapes: an attribute `#[...]` whose tokens include the
/// identifier `test` (and not `not`, so `#[cfg(not(test))]` code is still
/// linted), followed by any further attributes, then an item whose body is
/// the next top-level `{...}` block. `#[cfg(test)] mod t;` (out-of-line
/// test module) masks nothing — workspace src trees keep tests inline.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Find the matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut is_test = false;
        let mut negated = false;
        while j < toks.len() {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].is_ident("test") {
                is_test = true;
            } else if toks[j].is_ident("not") || toks[j].is_ident("cfg_attr") {
                // `#[cfg(not(test))]` guards production code and
                // `#[cfg_attr(test, ...)]` decorates items that also build
                // outside tests — neither marks a test-only region.
                negated = true;
            }
            j += 1;
        }
        if !is_test || negated || j >= toks.len() {
            i = j.max(i + 1);
            continue;
        }
        // Skip any further attributes (`#[...]`).
        let mut k = j + 1;
        while k + 1 < toks.len() && toks[k].is_punct("#") && toks[k + 1].is_punct("[") {
            let mut d = 0usize;
            let mut m = k + 1;
            while m < toks.len() {
                if toks[m].is_punct("[") {
                    d += 1;
                } else if toks[m].is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
        }
        // Find the item body: first `{` before any top-level `;`.
        let mut body_open = None;
        let mut m = k;
        let mut paren = 0i32;
        while m < toks.len() {
            let t = &toks[m];
            if t.is_punct("(") || t.is_punct("[") {
                paren += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                paren -= 1;
            } else if t.is_punct("{") && paren == 0 {
                body_open = Some(m);
                break;
            } else if t.is_punct(";") && paren == 0 {
                break; // `mod tests;` — nothing inline to mask
            }
            m += 1;
        }
        let Some(open) = body_open else {
            i = m.max(i + 1);
            continue;
        };
        // Match the braces.
        let mut d = 0usize;
        let mut close = open;
        while close < toks.len() {
            if toks[close].is_punct("{") {
                d += 1;
            } else if toks[close].is_punct("}") {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            close += 1;
        }
        let close = close.min(toks.len() - 1);
        for slot in &mut mask[attr_start..=close] {
            *slot = true;
        }
        i = close + 1;
    }
    mask
}
