//! The `pier-lint: allow(<rule>): <reason>` annotation grammar.
//!
//! A finding can be suppressed by a line comment either trailing the
//! offending line or on its own line directly above it:
//!
//! ```text
//! // pier-lint: allow(det-iter): commutative count-merge; order never
//! // reaches sim behavior.
//! for neighbors in self.adj.values() { ... }
//! ```
//!
//! The reason is mandatory and must carry real words — empty or
//! single-token reasons are themselves findings (`bad-allow`), and an
//! annotation that suppresses nothing is an `unused-allow` finding, so
//! suppressions can never silently rot.

use crate::lexer::{Comment, Tok};
use crate::report::Rule;

/// One parsed allow-annotation.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Line the comment sits on.
    pub line: u32,
    /// The code line this annotation governs: its own line (trailing
    /// comment) or the first following line holding any token, so a
    /// reason may wrap over several comment lines. Set by
    /// [`Annotations::resolve_targets`].
    pub target: u32,
    pub rule: Rule,
    pub reason: String,
    /// Set when a pass consumes this annotation.
    pub used: bool,
}

/// Outcome of scanning a file's comments for annotations.
#[derive(Debug, Default)]
pub struct Annotations {
    pub allows: Vec<Allow>,
    /// Malformed annotations: (line, problem description).
    pub malformed: Vec<(u32, String)>,
}

const MARKER: &str = "pier-lint:";

/// Minimum number of whitespace-separated words a reason must carry to
/// count as human-readable (one token like "ok" is not an argument).
const MIN_REASON_WORDS: usize = 3;

pub fn parse(comments: &[Comment]) -> Annotations {
    let mut out = Annotations::default();
    for c in comments {
        // The marker must open the comment: an annotation is a dedicated
        // comment, so prose (or doc text) *mentioning* the grammar never
        // parses as one.
        let Some(rest) = c.text.trim_start().strip_prefix(MARKER) else { continue };
        let rest = rest.trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            out.malformed
                .push((c.line, format!("expected `allow(<rule>): <reason>` after `{MARKER}`")));
            continue;
        };
        let Some(close) = body.find(')') else {
            out.malformed.push((c.line, "unclosed `allow(` annotation".to_string()));
            continue;
        };
        let rule_name = body[..close].trim();
        let Some(rule) = Rule::from_id(rule_name) else {
            out.malformed.push((c.line, format!("unknown lint rule `{rule_name}`")));
            continue;
        };
        let tail = body[close + 1..].trim_start();
        let Some(reason) = tail.strip_prefix(':') else {
            out.malformed.push((c.line, "missing `: <reason>` after `allow(..)`".to_string()));
            continue;
        };
        let reason = reason.trim();
        if reason.split_whitespace().count() < MIN_REASON_WORDS {
            out.malformed.push((
                c.line,
                format!(
                    "allow({}) needs a human-readable reason (≥ {MIN_REASON_WORDS} words)",
                    rule.id()
                ),
            ));
            continue;
        }
        out.allows.push(Allow {
            line: c.line,
            target: c.line,
            rule,
            reason: reason.to_string(),
            used: false,
        });
    }
    out
}

impl Annotations {
    /// Compute each annotation's governed code line: its own line if any
    /// token sits there (trailing comment), else the first later line
    /// holding a token.
    pub fn resolve_targets(&mut self, toks: &[Tok]) {
        for a in &mut self.allows {
            a.target = toks.iter().map(|t| t.line).filter(|&l| l >= a.line).min().unwrap_or(a.line);
        }
    }

    /// Try to suppress a finding of `rule` at `line`; marks the matching
    /// annotation used.
    pub fn suppress(&mut self, rule: Rule, line: u32) -> bool {
        for a in &mut self.allows {
            if a.rule == rule && a.target == line {
                a.used = true;
                return true;
            }
        }
        false
    }
}
