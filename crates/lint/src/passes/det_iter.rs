//! DET-ITER: unordered-container iteration in sim-affecting crates.
//!
//! `HashMap`/`HashSet` iteration order is arbitrary (and, with the std
//! `RandomState` hasher, different every process), so any point where it
//! can reach simulation behavior — send order, sampling, event
//! scheduling — is a reproducibility bug waiting for a hash-seed change.
//! This bug class is real here: PR 4 caught fig8 sampling crawl vantages
//! from `HashMap::keys()` order, PR 3 caught queries injected from
//! crashed vantages found the same way.
//!
//! The pass is token-level, so it is deliberately conservative about
//! types: it harvests container kinds from declarations it can see
//! (struct fields, `let` ascriptions, `Type::new()` initializers, type
//! aliases) and classifies receivers as *unordered* (`HashMap`,
//! `HashSet`), *ordered/deterministic* (`BTreeMap`, `BTreeSet`, `Vec`,
//! `VecDeque`, `IdCounter` — the open-addressed counter is
//! insertion-deterministic), or *unknown*. It flags:
//!
//! * map/set-specific iteration (`keys`, `values`, `values_mut`,
//!   `into_keys`, `into_values`) on unordered or unknown receivers,
//! * generic iteration (`iter`, `iter_mut`, `into_iter`, zero-arg
//!   `drain`) on known-unordered receivers,
//! * `for .. in [&][mut] path` loops over known-unordered names,
//!
//! unless the surrounding statement *sanitizes* the order: sorts it,
//! reduces it order-insensitively (`sum`, `count`, `min`, `max`, `all`,
//! `any`, ...), collects it back into an unordered/ordered container, or
//! the next statement immediately sorts the collected binding. Anything
//! else needs a `// pier-lint: allow(det-iter): <reason>` annotation
//! stating the order-insensitivity argument.

use std::collections::BTreeMap;

use crate::annotations::Annotations;
use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Rule};

use super::FileCtx;

/// Containers whose iteration order is arbitrary.
const UNORDERED: [&str; 2] = ["HashMap", "HashSet"];
/// Containers whose iteration order is deterministic given deterministic
/// content (sorted, insertion-ordered, or open-addressed with a fixed
/// hash and deterministic insert sequence).
const ORDERED: [&str; 7] =
    ["BTreeMap", "BTreeSet", "Vec", "VecDeque", "IdCounter", "IndexMap", "Box"];

/// Map/set-specific iteration methods (exist on ordered maps too, so the
/// receiver classification decides).
const MAP_ITER: [&str; 5] = ["keys", "values", "values_mut", "into_keys", "into_values"];
/// Generic iteration methods — flagged only on known-unordered receivers.
const GENERIC_ITER: [&str; 4] = ["iter", "iter_mut", "into_iter", "drain"];

/// Method/type names that make the statement order-insensitive.
const SANITIZERS: [&str; 22] = [
    // Sorting the stream (or the collection it came from).
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    // Order-insensitive reductions.
    "sum",
    "product",
    "count",
    "min",
    "max",
    "all",
    "any",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    // Collecting into a container whose own order doesn't depend on
    // arrival order (or is itself unordered, deferring the question to
    // its eventual iteration).
    "HashSet",
    "HashMap",
    "BTreeMap",
    "BTreeSet",
];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Unordered,
    Ordered,
}

/// Harvest `name -> container kind` facts from the file's declarations.
/// A name declared with conflicting kinds (two structs in one file) is
/// dropped to *unknown* rather than guessed.
fn harvest(toks: &[Tok]) -> BTreeMap<String, Kind> {
    // Type aliases first: `type SeenMap = HashMap<...>;`.
    let mut alias: BTreeMap<String, Kind> = BTreeMap::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("type")
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is_punct("=")
        {
            let mut j = i + 3;
            while j < toks.len() && !toks[j].is_punct(";") {
                if let Some(k) = classify_ident(&toks[j].text, &alias) {
                    alias.insert(toks[i + 1].text.clone(), k);
                    break;
                }
                j += 1;
            }
        }
    }

    let mut kinds: BTreeMap<String, Option<Kind>> = BTreeMap::new();
    let mut learn = |name: &str, k: Kind| match kinds.get(name) {
        Some(Some(prev)) if *prev != k => {
            kinds.insert(name.to_string(), None); // conflict -> unknown
        }
        Some(_) => {}
        None => {
            kinds.insert(name.to_string(), Some(k));
        }
    };

    for i in 0..toks.len() {
        // `name : Type` (struct fields, let ascriptions, fn params).
        if toks[i].kind == TokKind::Ident
            && i + 2 < toks.len()
            && toks[i + 1].is_punct(":")
            && !toks[i + 2].is_punct(":") // skip paths like `std::collections`
            && (i == 0 || !toks[i - 1].is_punct(":"))
        {
            let name = &toks[i].text;
            // Scan the type region: stop at `,` `;` `=` `)` `{` `>` at depth 0.
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut paren = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle -= 1;
                    if angle < 0 {
                        break;
                    }
                } else if t.is_punct("(") || t.is_punct("[") {
                    paren += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    paren -= 1;
                    if paren < 0 {
                        break;
                    }
                } else if (t.is_punct(",") || t.is_punct(";") || t.is_punct("=") || t.is_punct("{"))
                    && angle == 0
                    && paren == 0
                {
                    break;
                } else if t.kind == TokKind::Ident {
                    if let Some(k) = classify_ident(&t.text, &alias) {
                        learn(name, k);
                        break;
                    }
                }
                j += 1;
            }
        }
        // `let [mut] name = Type::new()` / `::default()` / `::with_capacity(..)`.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 1 < toks.len()
                && toks[j].kind == TokKind::Ident
                && toks[j + 1].is_punct("=")
                && j + 2 < toks.len()
            {
                if let Some(k) = classify_ident(&toks[j + 2].text, &alias) {
                    learn(&toks[j].text, k);
                }
            }
        }
    }

    kinds.into_iter().filter_map(|(name, k)| k.map(|k| (name, k))).collect()
}

fn classify_ident(ident: &str, alias: &BTreeMap<String, Kind>) -> Option<Kind> {
    if UNORDERED.contains(&ident) {
        Some(Kind::Unordered)
    } else if ORDERED.contains(&ident) {
        Some(Kind::Ordered)
    } else {
        alias.get(ident).copied()
    }
}

pub fn run(ctx: &FileCtx<'_>, ann: &mut Annotations, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    let kinds = harvest(toks);

    // Method-call triggers.
    for i in 0..toks.len() {
        if ctx.mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let m = toks[i].text.as_str();
        let is_map_iter = MAP_ITER.contains(&m);
        let is_generic = GENERIC_ITER.contains(&m);
        if !is_map_iter && !is_generic {
            continue;
        }
        // Require the `.method(` shape.
        if i == 0 || !toks[i - 1].is_punct(".") || i + 1 >= toks.len() || !toks[i + 1].is_punct("(")
        {
            continue;
        }
        // `drain` must be zero-arg: `Vec::drain(..)` takes a range and is
        // order-preserving, `HashMap::drain()` is the unordered one.
        if m == "drain" && !(i + 2 < toks.len() && toks[i + 2].is_punct(")")) {
            continue;
        }
        // Resolve the receiver: the identifier just before the `.`.
        let recv =
            (i >= 2 && toks[i - 2].kind == TokKind::Ident).then(|| toks[i - 2].text.as_str());
        let kind = recv.and_then(|r| kinds.get(r).copied());
        let flag = match kind {
            Some(Kind::Ordered) => false,
            Some(Kind::Unordered) => true,
            // Unknown receiver: map-specific methods are still suspicious
            // (the workspace's only ordered maps are named fields, which
            // resolve); generic `iter()` on unknowns would drown the lint
            // in Vec false positives, so those pass.
            None => is_map_iter,
        };
        if !flag || statement_is_sanitized(toks, i) {
            continue;
        }
        let recv_name = recv.unwrap_or("<expr>");
        let (start, _) = stmt_span(toks, i);
        ctx.emit(
            ann,
            out,
            Rule::DetIter,
            &[toks[i].line, toks[start].line],
            format!(
                "`{recv_name}.{m}()` iterates a {} in unordered order with no \
                 sort or order-insensitive sink in the statement; sort first, \
                 reduce commutatively, or annotate the order-insensitivity argument",
                match kind {
                    Some(Kind::Unordered) => "HashMap/HashSet",
                    _ => "map/set of unknown ordering",
                }
            ),
        );
    }

    // `for pat in [&][mut] path { .. }` over a known-unordered name.
    let mut i = 0usize;
    while i < toks.len() {
        if ctx.mask[i] || !toks[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Find `in` at depth 0 before the loop body `{`.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut in_at = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
                depth -= 1;
            } else if t.is_ident("in") && depth <= 0 {
                in_at = Some(j);
                break;
            } else if t.is_punct("{") || t.is_punct(";") {
                break; // not a for-loop header we understand (e.g. `impl<..> for`)
            }
            j += 1;
        }
        let Some(in_at) = in_at else {
            i = j.max(i + 1);
            continue;
        };
        // Expression tokens up to the body `{`.
        let mut k = in_at + 1;
        let mut expr: Vec<&Tok> = Vec::new();
        while k < toks.len() && !toks[k].is_punct("{") {
            expr.push(&toks[k]);
            k += 1;
        }
        i = k;
        // Only a bare path (no calls): `map`, `&map`, `&mut self.map`.
        if expr.iter().any(|t| t.is_punct("(")) {
            continue; // method calls were handled by the trigger above
        }
        let Some(last) = expr.last().filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if kinds.get(&last.text) == Some(&Kind::Unordered) {
            ctx.emit(
                ann,
                out,
                Rule::DetIter,
                &[last.line],
                format!(
                    "`for .. in {}` iterates a HashMap/HashSet in unordered order; \
                     iterate a sorted copy or annotate the order-insensitivity argument",
                    last.text
                ),
            );
        }
    }
}

/// The statement span around token `at`: back to just past the previous
/// `;`/`{`/`}`, forward to the terminating `;` (or the `{`/`}` that ends
/// the expression). Rough by design — closures with blocks shorten the
/// visible span, in which case the code needs an annotation anyway.
fn stmt_span(toks: &[Tok], at: usize) -> (usize, usize) {
    let mut start = at;
    while start > 0 {
        let t = &toks[start - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        start -= 1;
    }
    let mut depth = 0i32;
    let mut end = at;
    while end < toks.len() {
        let t = &toks[end];
        if t.is_punct("{") && depth == 0 {
            break; // a block begins (for/if body): the statement's own span ends
        }
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if t.is_punct(";") && depth == 0 {
            break;
        }
        end += 1;
    }
    (start, end)
}

/// Does the statement around `at` sort the stream, reduce it
/// order-insensitively, or collect it into an order-owning container —
/// or does the *next* statement immediately sort the binding?
fn statement_is_sanitized(toks: &[Tok], at: usize) -> bool {
    let (start, end) = stmt_span(toks, at);
    for t in &toks[start..end.min(toks.len())] {
        if t.kind == TokKind::Ident && SANITIZERS.contains(&t.text.as_str()) {
            return true;
        }
    }
    // `let mut v: Vec<_> = m.keys().collect(); v.sort();`
    if end < toks.len() && toks[end].is_punct(";") && toks[start].is_ident("let") {
        let mut b = start + 1;
        if b < toks.len() && toks[b].is_ident("mut") {
            b += 1;
        }
        if toks[b].kind == TokKind::Ident {
            let bound = &toks[b].text;
            if let (Some(n0), Some(n1), Some(n2)) =
                (toks.get(end + 1), toks.get(end + 2), toks.get(end + 3))
            {
                if n0.is_ident(bound)
                    && n1.is_punct(".")
                    && n2.kind == TokKind::Ident
                    && n2.text.starts_with("sort")
                {
                    return true;
                }
            }
        }
    }
    false
}
