//! SHARD-STATIC: process-wide mutable state in protocol crates.
//!
//! The sharded kernel (PR 6) re-runs the same node set under any shard
//! count and demands bit-identical results; a `static mut`, an
//! interior-mutable `static`, or a `thread_local!` is state that crosses
//! shard boundaries (or worse, varies with which OS thread a shard
//! lands on). The only sanctioned process-wide state is the registered
//! interners and metric registries named in the per-crate config —
//! content-addressed structures whose iteration order is never exposed.

use crate::annotations::Annotations;
use crate::config::CrateRules;
use crate::report::{Finding, Rule};

use super::FileCtx;

/// Type identifiers that give a `static` interior mutability.
const INTERIOR_MUT: [&str; 10] = [
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "Lazy",
    "Mutex",
    "RwLock",
    "LazyMetricClass",
];

fn is_interior_mut(ident: &str) -> bool {
    INTERIOR_MUT.contains(&ident) || ident.starts_with("Atomic")
}

pub fn run(ctx: &FileCtx<'_>, rules: &CrateRules, ann: &mut Annotations, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if ctx.mask[i] {
            i += 1;
            continue;
        }
        // `thread_local! { ... }`
        if toks[i].is_ident("thread_local") && i + 1 < toks.len() && toks[i + 1].is_punct("!") {
            ctx.emit(
                ann,
                out,
                Rule::ShardStatic,
                &[toks[i].line],
                "`thread_local!` state varies with shard-to-thread placement; \
                 keep per-node state in the node and per-run state in the Sim"
                    .to_string(),
            );
            i += 2;
            continue;
        }
        if !toks[i].is_ident("static") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // `static mut NAME ...` — always a finding.
        if i + 1 < toks.len() && toks[i + 1].is_ident("mut") {
            let name = toks.get(i + 2).map(|t| t.text.as_str()).unwrap_or("?");
            ctx.emit(
                ann,
                out,
                Rule::ShardStatic,
                &[line],
                format!("`static mut {name}` leaks mutable state across shard boundaries"),
            );
            i += 2;
            continue;
        }
        // `static NAME: <type> = ...` — flag interior mutability unless the
        // name is a registered interner/metric registry.
        let (Some(name_tok), Some(colon)) = (toks.get(i + 1), toks.get(i + 2)) else {
            i += 1;
            continue;
        };
        if name_tok.kind != crate::lexer::TokKind::Ident || !colon.is_punct(":") {
            // Not a parseable `static NAME :` shape (e.g. macro body using
            // `static $name:`); nothing to check here — the macro's
            // *invocations* are what user crates write.
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        // Scan the type region up to `=` (angle-depth aware: `=` may
        // appear inside `<...>` as an associated-type binding) or `;`.
        let mut j = i + 3;
        let mut angle = 0i32;
        let mut interior: Option<String> = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if (t.is_punct("=") && angle <= 0) || t.is_punct(";") {
                break;
            } else if t.kind == crate::lexer::TokKind::Ident
                && is_interior_mut(&t.text)
                && interior.is_none()
            {
                interior = Some(t.text.clone());
            }
            j += 1;
        }
        if let Some(ty) = interior {
            if !rules.shard_static_allow.contains(&name.as_str()) {
                ctx.emit(
                    ann,
                    out,
                    Rule::ShardStatic,
                    &[line],
                    format!(
                        "interior-mutable `static {name}: ..{ty}..` is process-wide \
                         state; only registered interners/metric registries \
                         (config `shard_static_allow`) may do this"
                    ),
                );
            }
        }
        i = j;
    }
}
