//! The lint passes. Each pass walks the token stream of one file; a
//! finding is emitted unless a `pier-lint: allow(<rule>): <reason>`
//! annotation governs the offending line (see [`crate::annotations`]).

use crate::annotations::Annotations;
use crate::config::CrateRules;
use crate::lexer::Tok;
use crate::report::{Finding, Rule};

pub mod det_iter;
pub mod shard_static;
pub mod simple;

/// Everything a pass needs to see about one file.
pub struct FileCtx<'a> {
    /// Crate directory name under `crates/` (e.g. `gnutella`).
    pub crate_dir: &'a str,
    /// Workspace-relative path (e.g. `crates/gnutella/src/ultrapeer.rs`).
    pub path: &'a str,
    /// Crate-relative path (e.g. `src/ultrapeer.rs`).
    pub rel_path: &'a str,
    pub toks: &'a [Tok],
    /// `true` for tokens inside `#[cfg(test)]` / `#[test]` regions.
    pub mask: &'a [bool],
}

impl FileCtx<'_> {
    /// Emit a finding at `line` unless an annotation suppresses it. Extra
    /// candidate lines (e.g. the first line of a multi-line statement)
    /// may also carry the annotation.
    pub fn emit(
        &self,
        ann: &mut Annotations,
        out: &mut Vec<Finding>,
        rule: Rule,
        lines: &[u32],
        msg: String,
    ) {
        for &l in lines {
            if ann.suppress(rule, l) {
                return;
            }
        }
        out.push(Finding { rule, path: self.path.to_string(), line: lines[0], msg });
    }
}

/// Run every enabled per-file pass.
pub fn run_all(
    ctx: &FileCtx<'_>,
    rules: &CrateRules,
    ann: &mut Annotations,
    out: &mut Vec<Finding>,
) {
    if rules.det_iter {
        det_iter::run(ctx, ann, out);
    }
    if rules.det_clock && !rules.det_clock_allow_paths.contains(&ctx.rel_path) {
        simple::det_clock(ctx, ann, out);
    }
    if rules.det_entropy {
        simple::det_entropy(ctx, ann, out);
    }
    if rules.shard_static {
        shard_static::run(ctx, rules, ann, out);
    }
    if rules.metric_raw {
        simple::metric_raw(ctx, ann, out);
    }
    if rules.cast_narrow_paths.contains(&ctx.rel_path) {
        simple::cast_narrow(ctx, ann, out);
    }
}

/// Count `unsafe` tokens (test code included: `#![forbid(unsafe_code)]`
/// is crate-wide, so the audit must be too).
pub fn count_unsafe(toks: &[Tok]) -> usize {
    toks.iter().filter(|t| t.is_ident("unsafe")).count()
}

/// Does the file carry a `#![forbid(unsafe_code)]` inner attribute?
pub fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    })
}
