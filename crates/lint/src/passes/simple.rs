//! The single-token-pattern passes: DET-CLOCK, DET-ENTROPY, METRIC-RAW,
//! CAST-NARROW.

use crate::annotations::Annotations;
use crate::report::{Finding, Rule};

use super::FileCtx;

/// DET-CLOCK: wall-clock reads are forbidden outside bench timing code.
/// Sim code gets time from `Ctx::now()`; anything keyed to the host
/// clock diverges run to run and host to host.
pub fn det_clock(ctx: &FileCtx<'_>, ann: &mut Annotations, out: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.mask[i] {
            continue;
        }
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            ctx.emit(
                ann,
                out,
                Rule::DetClock,
                &[t.line],
                format!(
                    "`{}` reads the wall clock; sim code must use `Ctx::now()` \
                     (wall-clock timing lives in pier-bench only)",
                    t.text
                ),
            );
        }
    }
}

/// Identifiers that pull ambient entropy into the process. All
/// randomness must flow from seeded streams (`pier_netsim::rng`), or
/// runs stop being a pure function of the master seed.
const ENTROPY_IDENTS: [&str; 6] =
    ["thread_rng", "ThreadRng", "RandomState", "from_entropy", "OsRng", "getrandom"];

/// DET-ENTROPY: forbidden everywhere, no exceptions by crate.
pub fn det_entropy(ctx: &FileCtx<'_>, ann: &mut Annotations, out: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.mask[i] {
            continue;
        }
        if ENTROPY_IDENTS.iter().any(|id| t.is_ident(id)) {
            ctx.emit(
                ann,
                out,
                Rule::DetEntropy,
                &[t.line],
                format!(
                    "`{}` draws ambient entropy; every random stream must derive \
                     from the experiment's master seed",
                    t.text
                ),
            );
        }
    }
}

/// METRIC-RAW: direct `MetricClass::new` / `LazyMetricClass::new`
/// registration belongs in the crate's `classes` module (normally via
/// the `metric_classes!` macro), so the metric namespace stays auditable
/// in one place per crate.
pub fn metric_raw(ctx: &FileCtx<'_>, ann: &mut Annotations, out: &mut Vec<Finding>) {
    if ctx.rel_path.ends_with("classes.rs") {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len().saturating_sub(3) {
        if ctx.mask[i] {
            continue;
        }
        if (toks[i].is_ident("MetricClass") || toks[i].is_ident("LazyMetricClass"))
            && toks[i + 1].is_punct(":")
            && toks[i + 2].is_punct(":")
            && toks[i + 3].is_ident("new")
        {
            ctx.emit(
                ann,
                out,
                Rule::MetricRaw,
                &[toks[i].line],
                format!(
                    "`{}::new` outside a `classes` module: register metric names \
                     with `metric_classes!` in this crate's `classes` module",
                    toks[i].text
                ),
            );
        }
    }
}

/// Integer targets an `as` cast can silently truncate into.
const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// CAST-NARROW: in arena/columnar index code, a bare narrowing `as` cast
/// silently wraps once an offset outgrows the target type — at metro
/// scale that corrupts slot offsets instead of failing. Use
/// `T::try_from(x).expect("<invariant>")` so the bound is checked and
/// named.
pub fn cast_narrow(ctx: &FileCtx<'_>, ann: &mut Annotations, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len().saturating_sub(1) {
        if ctx.mask[i] {
            continue;
        }
        if toks[i].is_ident("as") && NARROW_TARGETS.iter().any(|t| toks[i + 1].is_ident(t)) {
            ctx.emit(
                ann,
                out,
                Rule::CastNarrow,
                &[toks[i].line],
                format!(
                    "bare `as {}` cast in arena/index code can silently truncate; \
                     use `{}::try_from(..).expect(..)` naming the capacity invariant",
                    toks[i + 1].text,
                    toks[i + 1].text
                ),
            );
        }
    }
}
