//! Findings, rule identifiers, and text/JSON rendering.

use std::collections::BTreeMap;
use std::fmt;

/// The lint catalog. Rule ids are the kebab-case names used in
/// `pier-lint: allow(<rule>): <reason>` annotations and `--json` output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered `HashMap`/`HashSet` iteration in a sim-affecting crate
    /// without a sort, an order-insensitive sink, or an annotation.
    DetIter,
    /// `Instant::now` / `SystemTime` outside bench timing code.
    DetClock,
    /// `thread_rng` / `RandomState` / `from_entropy` / `OsRng` anywhere.
    DetEntropy,
    /// Mutable or interior-mutable `static` (or `thread_local!`) that
    /// could leak state across shard boundaries.
    ShardStatic,
    /// `MetricClass::new` / `LazyMetricClass::new` outside a `classes`
    /// module (use `metric_classes!` in the crate's `classes` module).
    MetricRaw,
    /// Bare narrowing `as` cast in arena/columnar index code.
    CastNarrow,
    /// Crate contains no `unsafe` but its root doesn't `#![forbid(unsafe_code)]`.
    UnsafeAudit,
    /// Malformed allow-annotation (unknown rule, missing/short reason).
    BadAllow,
    /// Allow-annotation that suppressed nothing.
    UnusedAllow,
}

impl Rule {
    pub const ALL: [Rule; 9] = [
        Rule::DetIter,
        Rule::DetClock,
        Rule::DetEntropy,
        Rule::ShardStatic,
        Rule::MetricRaw,
        Rule::CastNarrow,
        Rule::UnsafeAudit,
        Rule::BadAllow,
        Rule::UnusedAllow,
    ];

    pub fn id(self) -> &'static str {
        match self {
            Rule::DetIter => "det-iter",
            Rule::DetClock => "det-clock",
            Rule::DetEntropy => "det-entropy",
            Rule::ShardStatic => "shard-static",
            Rule::MetricRaw => "metric-raw",
            Rule::CastNarrow => "cast-narrow",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::BadAllow => "bad-allow",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Full analysis output for a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Crate name → number of `unsafe` tokens in its src tree.
    pub unsafe_counts: BTreeMap<String, usize>,
    pub files_scanned: usize,
    /// Allow-annotations that suppressed a finding: (path, line, rule, reason).
    pub allows_used: Vec<(String, u32, Rule, String)>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Canonical ordering so output is diffable across runs and hosts.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.allows_used.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    }

    /// Human-readable rendering (one finding per line + summary).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        let mut by_rule: BTreeMap<Rule, usize> = BTreeMap::new();
        for f in &self.findings {
            *by_rule.entry(f.rule).or_insert(0) += 1;
        }
        out.push_str(&format!(
            "pier-lint: {} finding(s) across {} file(s); {} allow-annotation(s) in effect\n",
            self.findings.len(),
            self.files_scanned,
            self.allows_used.len()
        ));
        for (rule, n) in &by_rule {
            out.push_str(&format!("  {rule}: {n}\n"));
        }
        let total_unsafe: usize = self.unsafe_counts.values().sum();
        out.push_str(&format!("unsafe-audit: {total_unsafe} `unsafe` token(s) workspace-wide\n"));
        out
    }

    /// Machine-readable rendering (stable key order; no external deps, so
    /// the writer is hand-rolled like the rest of the vendored stand-ins).
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"msg\": {}}}",
                json_str(f.rule.id()),
                json_str(&f.path),
                f.line,
                json_str(&f.msg)
            ));
        }
        s.push_str(if self.findings.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"allows\": [");
        for (i, (path, line, rule, reason)) in self.allows_used.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(rule.id()),
                json_str(path),
                line,
                json_str(reason)
            ));
        }
        s.push_str(if self.allows_used.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"unsafe_counts\": {");
        for (i, (krate, n)) in self.unsafe_counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {}", json_str(krate), n));
        }
        s.push_str(if self.unsafe_counts.is_empty() { "},\n" } else { "\n  },\n" });
        s.push_str(&format!("  \"files_scanned\": {}\n}}\n", self.files_scanned));
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
