#![forbid(unsafe_code)]
//! The `pier-lint` CLI.
//!
//! ```text
//! pier-lint [--deny] [--json] [--root <workspace>]
//! ```
//!
//! * default: print findings + summary, always exit 0 (report mode)
//! * `--deny`: exit 1 if any finding — the CI gate
//! * `--json`: machine-readable report on stdout (diffable artifact)
//! * `--root`: workspace root (defaults to this crate's `../..`)

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("pier-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: pier-lint [--deny] [--json] [--root <workspace>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pier-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| pier_lint::workspace_root_from(env!("CARGO_MANIFEST_DIR")));

    let report = match pier_lint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pier-lint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    if deny && !report.is_clean() {
        eprintln!("pier-lint: --deny: {} finding(s)", report.findings.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
