//! Per-crate lint configuration.
//!
//! The workspace config is code, not a file: the build environment is
//! offline and the crate set is small and stable, so a constructor
//! naming every crate's lint set is the clearest single source of truth
//! (and the `lint_clean` tier-1 test keeps it honest — an unlisted new
//! crate fails the workspace walk loudly).

use std::collections::BTreeMap;

/// Which passes run for one crate, plus their allowlists.
#[derive(Clone, Debug, Default)]
pub struct CrateRules {
    /// DET-ITER: unordered-container iteration must be sorted, sunk into
    /// an order-insensitive reduction, or annotated. On for crates whose
    /// code runs inside (or builds the inputs of) the simulation.
    pub det_iter: bool,
    /// DET-CLOCK: no wall-clock reads; sim code gets time from `Ctx`.
    pub det_clock: bool,
    /// Workspace-relative path suffixes DET-CLOCK *exempts* even when the
    /// pass is on: confined profiling modules whose wall-clock reads are
    /// read-only observers of the sim, never inputs to it. Keep this list
    /// short — each entry needs a written reason at its insertion site.
    pub det_clock_allow_paths: &'static [&'static str],
    /// DET-ENTROPY: no ambient entropy; all randomness is seeded streams.
    pub det_entropy: bool,
    /// SHARD-STATIC: no mutable/interior-mutable statics that could carry
    /// state across shard boundaries.
    pub shard_static: bool,
    /// METRIC-RAW: metric classes are registered in `classes` modules.
    pub metric_raw: bool,
    /// CAST-NARROW applies to these workspace-relative path suffixes
    /// (arena/columnar index code where a silent truncation corrupts
    /// offsets at metro scale). Empty = pass off.
    pub cast_narrow_paths: &'static [&'static str],
    /// Static names SHARD-STATIC accepts without an annotation: the
    /// registered process-wide interners and metric registries, which are
    /// deterministic by construction (content-addressed, iteration never
    /// exposed) and deliberately shared across shards.
    pub shard_static_allow: &'static [&'static str],
}

impl CrateRules {
    /// Everything on — the baseline for sim-affecting crates.
    fn sim() -> Self {
        CrateRules {
            det_iter: true,
            det_clock: true,
            det_entropy: true,
            shard_static: true,
            metric_raw: true,
            ..Default::default()
        }
    }

    /// Support crates: everything except DET-ITER (their iteration output
    /// never reaches sim event ordering directly; the sim crates' lints
    /// catch it at the boundary).
    fn support() -> Self {
        CrateRules { det_iter: false, ..Self::sim() }
    }
}

/// The workspace lint map, keyed by `crates/<dir>` directory name.
pub fn workspace_rules() -> BTreeMap<&'static str, CrateRules> {
    let mut m = BTreeMap::new();

    // Sim-affecting crates: protocol state machines and the machinery
    // that drives them. DET-ITER enforced.
    m.insert("gnutella", CrateRules { cast_narrow_paths: &["src/files.rs"], ..CrateRules::sim() });
    m.insert("dht", CrateRules { cast_narrow_paths: &["src/storage.rs"], ..CrateRules::sim() });
    m.insert("piersearch", CrateRules::sim());
    m.insert("hybrid", CrateRules::sim());
    m.insert("churn", CrateRules::sim());
    m.insert(
        "netsim",
        CrateRules {
            // The kernel owns the process-wide metric registry; its
            // `classes` machinery is *defined* here, so METRIC-RAW would
            // flag the implementation of the sanctioned path itself.
            metric_raw: false,
            shard_static_allow: &["REGISTRY"],
            ..CrateRules::sim()
        },
    );
    m.insert("workload", CrateRules::sim());

    // Support crates.
    m.insert(
        "vocab",
        CrateRules {
            cast_narrow_paths: &["src/counter.rs"],
            // The process-wide term interner: ids are handed out in
            // first-intern order (deterministic per run of a
            // deterministic workload) and its iteration is never exposed.
            shard_static_allow: &["TABLE"],
            ..CrateRules::support()
        },
    );
    m.insert("codec", CrateRules::support());
    m.insert("pier", CrateRules::support());
    m.insert("model", CrateRules::support());
    m.insert("lint", CrateRules::support());

    // pier-bench is the one place wall-clock timing is the point
    // (benchmarks, sweep wall-time reporting). Everything else still
    // applies — a bench-driven trial must stay seeded and shard-safe.
    m.insert("bench", CrateRules { det_clock: false, ..CrateRules::support() });

    // pier-trace is observability: the tracer/report modules are clock-free
    // and fully linted, but the profiling module is *about* wall-clock
    // (phase timers, barrier-wait measurement, the progress heartbeat), so
    // DET-CLOCK exempts exactly `src/profile.rs`. That confinement is safe
    // because profiling is a read-only observer behind `KernelProbe` /
    // `PhaseTimer`: it receives already-computed sim state and has no
    // channel back into RNG streams, event ordering, or `Metrics`.
    m.insert(
        "trace",
        CrateRules { det_clock_allow_paths: &["src/profile.rs"], ..CrateRules::support() },
    );

    m
}
