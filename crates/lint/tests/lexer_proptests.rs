//! Property tests for the lint lexer — the ISSUE's four trouble spots
//! (nested block comments, raw strings containing `"`, char literals,
//! lifetime ticks) plus total-function invariants: the lexer never
//! panics and is a pure function of its input.

use pier_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Strategy for comment/string body text: printable ASCII without the
/// characters that would terminate the enclosing construct early.
fn body_text() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| (b' ' + (b % 0x5f)) as char) // printable ASCII
            .filter(|c| !"/*\"#\\'".contains(*c))
            .collect()
    })
}

proptest! {
    #[test]
    fn nested_block_comments_hide_their_contents(
        depth in 1usize..6,
        inner in body_text(),
    ) {
        // before /* /* ... inner HashMap ... */ */ after
        let open = "/* ".repeat(depth);
        let close = " */".repeat(depth);
        let src = format!("before {open}{inner} HashMap {close} after");
        let lexed = lex(&src);
        let idents: Vec<&str> =
            lexed.toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
        prop_assert_eq!(idents, vec!["before", "after"]);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_comment_markers(
        a in body_text(),
        b in body_text(),
    ) {
        // r#".." // "# — everything up to the matching `"#` is one Str
        // token, quotes and comment-openers included.
        let src = format!("let s = r#\"{a} \" // /* {b}\"#; next");
        let lexed = lex(&src);
        let strs: Vec<&str> =
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text.as_str()).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert!(strs[0].contains(" \" // /* "));
        prop_assert!(lexed.comments.is_empty(), "no comment inside a raw string");
        prop_assert!(lexed.toks.iter().any(|t| t.is_ident("next")));
    }

    #[test]
    fn char_literals_are_chars_not_lifetimes(c in 0u8..0x5f) {
        let ch = (b' ' + c) as char;
        if ch == '\'' || ch == '\\' {
            return Ok(()); // escapes covered by the fixed cases below
        }
        let src = format!("let c = '{ch}';");
        let lexed = lex(&src);
        prop_assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Char));
        prop_assert!(lexed.toks.iter().all(|t| t.kind != TokKind::Lifetime));
    }

    #[test]
    fn lifetime_ticks_are_not_char_literals(name in "[a-z]{1,8}") {
        let src = format!("fn f<'{name}>(x: &'{name} str) -> &'{name} str {{ x }}");
        let lexed = lex(&src);
        let lifetimes =
            lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        prop_assert_eq!(lifetimes, 3);
        prop_assert!(lexed.toks.iter().all(|t| t.kind != TokKind::Char));
    }

    #[test]
    fn lexer_never_panics_and_is_deterministic(src in any::<String>()) {
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.toks, b.toks);
        prop_assert_eq!(a.comments, b.comments);
    }

    #[test]
    fn line_numbers_are_monotone(src in any::<String>()) {
        let lexed = lex(&src);
        let mut last = 0u32;
        for t in &lexed.toks {
            prop_assert!(t.line >= last, "token lines must not go backwards");
            last = t.line;
        }
    }
}

#[test]
fn escaped_char_literals_lex_as_chars() {
    for src in ["let c = '\\n';", "let c = '\\'';", "let c = '\\\\';", "let b = b'x';"] {
        let lexed = lex(src);
        assert!(
            lexed.toks.iter().any(|t| t.kind == TokKind::Char),
            "expected a Char token in {src:?}"
        );
        assert!(lexed.toks.iter().all(|t| t.kind != TokKind::Lifetime), "no lifetime in {src:?}");
    }
}

#[test]
fn static_lifetime_and_static_keyword_disambiguate() {
    let lexed = lex("static X: &'static str = \"s\";");
    assert!(lexed.toks.iter().any(|t| t.is_ident("static")));
    assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
}

#[test]
fn raw_string_hash_counts_must_match() {
    // `"#` inside an r##"..."## body does not end the literal.
    let lexed = lex("let s = r##\"contains \"# inside\"##; tail");
    let strs: Vec<_> = lexed.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].text.contains("\"# inside"));
    assert!(lexed.toks.iter().any(|t| t.is_ident("tail")));
}
