//! Tier-1 gate: the workspace itself must be lint-clean.
//!
//! This is the enforcement half of `pier-lint` — CI also runs the binary
//! with `--deny`, but this test makes a plain `cargo test` fail the
//! moment anyone reintroduces an unordered iteration, a wall-clock read,
//! an entropy source, a narrowing cast in a pinned module, or an
//! unregistered mutable static.

use pier_lint::{analyze_workspace, workspace_root_from};

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root_from(env!("CARGO_MANIFEST_DIR"));
    let report = analyze_workspace(&root).expect("workspace scan must succeed");
    assert!(
        report.files_scanned > 100,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    if !report.findings.is_empty() {
        panic!("pier-lint found {} issue(s):\n{}", report.findings.len(), report.render_text());
    }
}

#[test]
fn workspace_has_no_unsafe_code() {
    let root = workspace_root_from(env!("CARGO_MANIFEST_DIR"));
    let report = analyze_workspace(&root).expect("workspace scan must succeed");
    let total: usize = report.unsafe_counts.values().sum();
    assert_eq!(total, 0, "unsafe tokens appeared: {:?}", report.unsafe_counts);
}

#[test]
fn every_allow_annotation_carries_a_reason() {
    // `analyze_workspace` rejects malformed/reasonless annotations as
    // bad-allow findings, so a clean report already implies every
    // suppression in the tree is justified in writing. This test makes
    // the count visible: the number of active allows should stay small
    // and intentional — grow it only with a written argument.
    let root = workspace_root_from(env!("CARGO_MANIFEST_DIR"));
    let report = analyze_workspace(&root).expect("workspace scan must succeed");
    assert!(report.findings.is_empty(), "lint must be clean:\n{}", report.render_text());
    for (path, line, rule, reason) in &report.allows_used {
        assert!(
            reason.split_whitespace().count() >= 3,
            "{path}:{line} allow({}) reason is too thin: {reason:?}",
            rule.id()
        );
    }
    assert!(
        report.allows_used.len() <= 8,
        "allow-annotation count crept up to {}; audit before raising this bound",
        report.allows_used.len()
    );
}
