//! Per-pass fixtures: each lint must fire on a minimal positive example,
//! stay quiet on the matching negative, and honor a justified
//! allow-annotation. The final test is the seeded-mutation check the
//! acceptance criteria ask for: injecting each bug class into a clean
//! fixture must produce exactly that rule.

use pier_lint::analyze_source;
use pier_lint::report::Report;

fn rule_ids(rep: &Report) -> Vec<&'static str> {
    rep.findings.iter().map(|f| f.rule.id()).collect()
}

fn assert_clean(rep: &Report) {
    assert!(rep.findings.is_empty(), "expected clean, got:\n{}", rep.render_text());
}

fn assert_fires(rep: &Report, rule: &str) {
    assert!(
        rule_ids(rep).contains(&rule),
        "expected a {rule} finding, got:\n{}",
        rep.render_text()
    );
}

// ---------------------------------------------------------------------------
// DET-ITER
// ---------------------------------------------------------------------------

const DET_ITER_POS: &str = r#"
use std::collections::HashMap;
pub struct S { pub m: HashMap<u32, u32> }
impl S {
    pub fn order_sensitive(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for k in self.m.keys() {
            out.push(*k);
        }
        out
    }
}
"#;

#[test]
fn det_iter_fires_on_unsorted_hashmap_keys() {
    let rep = analyze_source("gnutella", "src/fx.rs", DET_ITER_POS);
    assert_fires(&rep, "det-iter");
}

#[test]
fn det_iter_quiet_on_btreemap() {
    let src = DET_ITER_POS.replace("HashMap", "BTreeMap");
    assert_clean(&analyze_source("gnutella", "src/fx.rs", &src));
}

#[test]
fn det_iter_quiet_when_collected_then_sorted() {
    let src = r#"
use std::collections::HashMap;
pub struct S { pub m: HashMap<u32, u32> }
impl S {
    pub fn sorted_keys(&self) -> Vec<u32> {
        let mut ks: Vec<u32> = self.m.keys().copied().collect();
        ks.sort();
        ks
    }
}
"#;
    assert_clean(&analyze_source("gnutella", "src/fx.rs", src));
}

#[test]
fn det_iter_quiet_on_order_insensitive_reduction() {
    let src = r#"
use std::collections::HashMap;
pub struct S { pub m: HashMap<u32, u32> }
impl S {
    pub fn total(&self) -> u32 {
        self.m.values().sum()
    }
}
"#;
    assert_clean(&analyze_source("gnutella", "src/fx.rs", src));
}

#[test]
fn det_iter_suppressed_by_justified_allow() {
    let src = r#"
use std::collections::HashMap;
pub struct S { pub m: HashMap<u32, u32> }
impl S {
    pub fn histogram(&self) -> usize {
        let mut n = 0;
        // pier-lint: allow(det-iter): commutative accumulation so visit
        // order cannot change the result value.
        for k in self.m.keys() {
            n += (*k as usize) & 1;
        }
        n
    }
}
"#;
    let rep = analyze_source("gnutella", "src/fx.rs", src);
    assert_clean(&rep);
    assert_eq!(rep.allows_used.len(), 1, "the annotation must register as used");
}

#[test]
fn det_iter_off_in_support_crates() {
    // codec never touches sim state; its rule set has det-iter off.
    assert_clean(&analyze_source("codec", "src/fx.rs", DET_ITER_POS));
}

#[test]
fn det_iter_ignores_test_code() {
    let src = format!("#[cfg(test)]\nmod tests {{\n{}\n}}\n", DET_ITER_POS);
    assert_clean(&analyze_source("gnutella", "src/fx.rs", &src));
}

// ---------------------------------------------------------------------------
// DET-CLOCK
// ---------------------------------------------------------------------------

const DET_CLOCK_POS: &str = r#"
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
"#;

#[test]
fn det_clock_fires_on_instant_now() {
    assert_fires(&analyze_source("dht", "src/fx.rs", DET_CLOCK_POS), "det-clock");
}

#[test]
fn det_clock_allowed_in_bench() {
    // pier-bench is the one crate that measures wall time on purpose.
    assert_clean(&analyze_source("bench", "src/fx.rs", DET_CLOCK_POS));
}

#[test]
fn det_clock_suppressed_by_justified_allow() {
    let src = r#"
pub fn stamp_ms() -> u64 {
    // pier-lint: allow(det-clock): value is logged, never branched on.
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
"#;
    let rep = analyze_source("dht", "src/fx.rs", src);
    assert_clean(&rep);
    assert_eq!(rep.allows_used.len(), 1);
}

// ---------------------------------------------------------------------------
// DET-ENTROPY
// ---------------------------------------------------------------------------

#[test]
fn det_entropy_fires_everywhere_even_bench() {
    let src = "pub fn roll() -> u64 { rand::thread_rng().gen() }\n";
    assert_fires(&analyze_source("bench", "src/fx.rs", src), "det-entropy");
}

#[test]
fn det_entropy_quiet_on_seeded_rng() {
    let src = "pub fn rng(seed: u64) -> SmallRng { SmallRng::seed_from_u64(seed) }\n";
    assert_clean(&analyze_source("gnutella", "src/fx.rs", src));
}

// ---------------------------------------------------------------------------
// SHARD-STATIC
// ---------------------------------------------------------------------------

#[test]
fn shard_static_fires_on_interior_mutable_static() {
    let src = "static CACHE: std::sync::Mutex<u64> = std::sync::Mutex::new(0);\n";
    assert_fires(&analyze_source("gnutella", "src/fx.rs", src), "shard-static");
}

#[test]
fn shard_static_fires_on_static_mut_and_thread_local() {
    let src = "static mut HITS: u64 = 0;\n";
    assert_fires(&analyze_source("dht", "src/fx.rs", src), "shard-static");
    let src = "thread_local! { static TLS: u64 = 0; }\n";
    assert_fires(&analyze_source("dht", "src/fx.rs", src), "shard-static");
}

#[test]
fn shard_static_quiet_on_immutable_static_and_registered_names() {
    assert_clean(&analyze_source("gnutella", "src/fx.rs", "static N: u64 = 5;\n"));
    // `TABLE` is vocab's registered interner; the config whitelists it.
    let src = "static TABLE: OnceLock<Interner> = OnceLock::new();\n";
    assert_clean(&analyze_source("vocab", "src/fx.rs", src));
}

#[test]
fn shard_static_suppressed_by_justified_allow() {
    let src = r#"
// pier-lint: allow(shard-static): write-once constant cache that all
// shards observe identically after first use.
static EMPTY2: OnceLock<u64> = OnceLock::new();
"#;
    let rep = analyze_source("gnutella", "src/fx.rs", src);
    assert_clean(&rep);
    assert_eq!(rep.allows_used.len(), 1);
}

// ---------------------------------------------------------------------------
// METRIC-RAW
// ---------------------------------------------------------------------------

#[test]
fn metric_raw_fires_outside_classes_module() {
    let src = "pub fn c() -> MetricClass { MetricClass::new(\"adhoc.metric\") }\n";
    assert_fires(&analyze_source("gnutella", "src/fx.rs", src), "metric-raw");
}

#[test]
fn metric_raw_allowed_inside_classes_module() {
    let src = "pub fn c() -> MetricClass { MetricClass::new(\"ok.metric\") }\n";
    assert_clean(&analyze_source("gnutella", "src/classes.rs", src));
}

// ---------------------------------------------------------------------------
// CAST-NARROW
// ---------------------------------------------------------------------------

#[test]
fn cast_narrow_fires_in_pinned_module() {
    let src = "pub fn off(len: usize) -> u32 { len as u32 }\n";
    assert_fires(&analyze_source("dht", "src/storage.rs", src), "cast-narrow");
}

#[test]
fn cast_narrow_scoped_to_pinned_paths_and_narrow_targets() {
    // Same cast elsewhere in the crate: not an arena index, not flagged.
    let src = "pub fn off(len: usize) -> u32 { len as u32 }\n";
    assert_clean(&analyze_source("dht", "src/fx.rs", src));
    // Widening cast in the pinned module: fine.
    let src = "pub fn wide(x: u32) -> u64 { x as u64 }\n";
    assert_clean(&analyze_source("dht", "src/storage.rs", src));
}

#[test]
fn cast_narrow_suppressed_by_justified_allow() {
    let src = r#"
pub fn off(len: usize) -> u32 {
    // pier-lint: allow(cast-narrow): bounded by MAX_SLOTS checked above.
    len as u32
}
"#;
    let rep = analyze_source("dht", "src/storage.rs", src);
    assert_clean(&rep);
    assert_eq!(rep.allows_used.len(), 1);
}

// ---------------------------------------------------------------------------
// UNSAFE-AUDIT
// ---------------------------------------------------------------------------

#[test]
fn unsafe_audit_fires_on_root_missing_forbid() {
    let rep = analyze_source("gnutella", "src/lib.rs", "pub fn f() {}\n");
    assert_fires(&rep, "unsafe-audit");
}

#[test]
fn unsafe_audit_quiet_with_forbid_attribute() {
    let rep = analyze_source("gnutella", "src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n");
    assert_clean(&rep);
}

#[test]
fn unsafe_audit_counts_unsafe_instead_of_demanding_forbid() {
    let rep = analyze_source("gnutella", "src/lib.rs", "pub unsafe fn f() {}\n");
    // A crate that really uses unsafe can't forbid it; the lint reports
    // the count instead of a finding.
    assert_clean(&rep);
    assert_eq!(rep.unsafe_counts.get("gnutella"), Some(&1));
}

// ---------------------------------------------------------------------------
// Annotation hygiene: bad-allow / unused-allow
// ---------------------------------------------------------------------------

#[test]
fn bad_allow_on_unknown_rule() {
    let src = "// pier-lint: allow(made-up-rule): some words of reason\npub fn f() {}\n";
    assert_fires(&analyze_source("gnutella", "src/fx.rs", src), "bad-allow");
}

#[test]
fn bad_allow_on_thin_reason() {
    let src = "// pier-lint: allow(det-clock): ok\npub fn f() {}\n";
    assert_fires(&analyze_source("gnutella", "src/fx.rs", src), "bad-allow");
}

#[test]
fn unused_allow_on_clean_line() {
    let src = "// pier-lint: allow(det-clock): nothing here needs this\npub fn f() {}\n";
    assert_fires(&analyze_source("gnutella", "src/fx.rs", src), "unused-allow");
}

#[test]
fn prose_mentioning_the_grammar_is_not_an_annotation() {
    let src = "//! Suppress with `pier-lint: allow(det-iter): <reason>` comments.\npub fn f() {}\n";
    assert_clean(&analyze_source("gnutella", "src/fx.rs", src));
}

// ---------------------------------------------------------------------------
// Seeded mutations: prove each pass fires when its bug class is injected
// into a fixture verified clean first.
// ---------------------------------------------------------------------------

const CLEAN_BASE: &str = r#"
use std::collections::HashMap;

pub struct S {
    pub m: HashMap<u32, u32>,
}

impl S {
    pub fn size(&self) -> usize {
        self.m.len()
    }
}
"#;

#[test]
fn seeded_mutations_are_each_caught() {
    assert_clean(&analyze_source("gnutella", "src/fx.rs", CLEAN_BASE));

    let mutations: &[(&str, &str)] = &[
        ("let _rng = rand::thread_rng();", "det-entropy"),
        ("let _t0 = std::time::Instant::now();", "det-clock"),
        ("for k in s.m.keys() { let _ = k; }", "det-iter"),
        ("let _c = MetricClass::new(\"mutant.metric\");", "metric-raw"),
    ];
    for (mutation, rule) in mutations {
        let src = format!("{CLEAN_BASE}\npub fn mutated(s: &S) {{\n    {mutation}\n}}\n");
        let rep = analyze_source("gnutella", "src/fx.rs", &src);
        assert_fires(&rep, rule);
        assert_eq!(
            rep.findings.len(),
            1,
            "mutation {mutation:?} should add exactly one finding:\n{}",
            rep.render_text()
        );
    }

    // Item-level mutations (statics) and path-scoped ones (casts).
    let src = format!("{CLEAN_BASE}\nstatic MUT_CACHE: RefCell<u64> = RefCell::new(0);\n");
    assert_fires(&analyze_source("gnutella", "src/fx.rs", &src), "shard-static");

    let base = "pub fn off(len: usize) -> u64 { len as u64 }\n";
    assert_clean(&analyze_source("dht", "src/storage.rs", base));
    let src = base.replace("u64", "u16");
    assert_fires(&analyze_source("dht", "src/storage.rs", &src), "cast-narrow");
}
