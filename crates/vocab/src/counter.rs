//! `IdCounter` — a flat open-addressed counter map for small integer keys.
//!
//! The hot per-node counters (`term_stats: HashMap<TermId, u64>`, the
//! hybrid TF/TPF tables, SAM's replica sightings) pay SipHash plus a
//! control-byte table for what is really "bump a counter keyed by a dense
//! u32 (or a packed pair)". This map stores keys and counts in two parallel
//! `Vec<u64>`s with multiply-shift hashing and linear probing: half the
//! slot width of `HashMap<u64, u64>`'s (key, value, ctrl) layout, no
//! per-lookup hasher state, and `heap_bytes` is exact by construction.
//!
//! Keys are arbitrary `u64`s except the sentinel `u64::MAX` (vacant); the
//! callers key by `TermId` (`u32`) or by two packed `u32`s, so the
//! sentinel is unreachable. Iteration order is table order — deterministic
//! for a given insertion sequence, but *not* insertion order; callers that
//! aggregate must not let iteration order leak into results.

use pier_netsim::HeapSize;

/// Vacant-slot marker. `u64::MAX` is not a valid key.
const VACANT: u64 = u64::MAX;

/// Fibonacci multiplier (odd, near 2^64/φ): spreads dense ids across the
/// table so linear probing sees few collisions.
const MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// An open-addressed `u64 → u64` counter map.
#[derive(Clone, Debug, Default)]
pub struct IdCounter {
    /// Power-of-two sized; `VACANT` marks empty slots. Parallel to `counts`.
    keys: Vec<u64>,
    counts: Vec<u64>,
    len: usize,
}

impl IdCounter {
    pub fn new() -> Self {
        IdCounter::default()
    }

    fn slot(&self, key: u64) -> usize {
        // Multiply-shift: high bits of key*MULT, masked to table size.
        (key.wrapping_mul(MULT) >> 32) as usize & (self.keys.len() - 1)
    }

    /// Index of `key`'s slot, or of the vacant slot where it would go.
    fn probe(&self, key: u64) -> usize {
        debug_assert!(!self.keys.is_empty());
        let mask = self.keys.len() - 1;
        let mut i = self.slot(key);
        loop {
            if self.keys[i] == key || self.keys[i] == VACANT {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![VACANT; cap]);
        let old_counts = std::mem::take(&mut self.counts);
        self.counts = vec![0; cap];
        for (k, c) in old_keys.into_iter().zip(old_counts) {
            if k != VACANT {
                let i = self.probe(k);
                self.keys[i] = k;
                self.counts[i] = c;
            }
        }
    }

    /// Add `delta` to `key`'s count, returning the new value.
    pub fn add(&mut self, key: u64, delta: u64) -> u64 {
        debug_assert_ne!(key, VACANT, "u64::MAX is the vacant sentinel");
        // Grow at 7/8 occupancy, like the stdlib table.
        if self.keys.is_empty() || (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let i = self.probe(key);
        if self.keys[i] == VACANT {
            self.keys[i] = key;
            self.len += 1;
        }
        self.counts[i] += delta;
        self.counts[i]
    }

    /// The count for `key`, or `None` if never added.
    pub fn get(&self, key: u64) -> Option<u64> {
        if self.keys.is_empty() {
            return None;
        }
        let i = self.probe(key);
        (self.keys[i] != VACANT).then(|| self.counts[i])
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All (key, count) pairs in table order (deterministic for a given
    /// insertion sequence; not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.keys.iter().zip(&self.counts).filter(|(&k, _)| k != VACANT).map(|(&k, &c)| (k, c))
    }
}

impl HeapSize for IdCounter {
    fn heap_bytes(&self) -> usize {
        (self.keys.capacity() + self.counts.capacity()) * size_of::<u64>()
    }
}

/// Pack two `u32`s into one counter key (for pair counters like TPF).
pub fn pack_pair(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut c = IdCounter::new();
        assert_eq!(c.get(7), None);
        assert_eq!(c.add(7, 1), 1);
        assert_eq!(c.add(7, 2), 3);
        assert_eq!(c.get(7), Some(3));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn survives_growth() {
        let mut c = IdCounter::new();
        for k in 0..10_000u64 {
            c.add(k, k + 1);
        }
        assert_eq!(c.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(c.get(k), Some(k + 1), "key {k}");
        }
        assert_eq!(c.get(10_001), None);
    }

    #[test]
    fn matches_hashmap_reference() {
        use std::collections::HashMap;
        let mut c = IdCounter::new();
        let mut m: HashMap<u64, u64> = HashMap::new();
        // A fixed pseudo-random op sequence over a small key space, so
        // collisions and repeats both occur.
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 257;
            let delta = x % 7;
            c.add(key, delta);
            *m.entry(key).or_default() += delta;
        }
        assert_eq!(c.len(), m.len());
        for (k, v) in &m {
            assert_eq!(c.get(*k), Some(*v));
        }
        let mut pairs: Vec<(u64, u64)> = c.iter().collect();
        pairs.sort_unstable();
        let mut want: Vec<(u64, u64)> = m.into_iter().collect();
        want.sort_unstable();
        assert_eq!(pairs, want);
    }

    #[test]
    fn pair_packing_is_injective() {
        assert_ne!(pack_pair(1, 2), pack_pair(2, 1));
        assert_eq!(pack_pair(0xAAAA_BBBB, 0xCCCC_DDDD), 0xAAAA_BBBB_CCCC_DDDDu64);
    }

    #[test]
    fn heap_bytes_is_exact() {
        let mut c = IdCounter::new();
        assert_eq!(pier_netsim::HeapSize::heap_bytes(&c), 0);
        c.add(1, 1);
        assert_eq!(
            pier_netsim::HeapSize::heap_bytes(&c),
            (c.keys.capacity() + c.counts.capacity()) * 8
        );
    }
}
