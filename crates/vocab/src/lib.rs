#![forbid(unsafe_code)]
//! # pier-vocab — the process-wide interned term vocabulary
//!
//! Every layer of the reproduction used to push `Vec<String>` keywords
//! around: the workload generator tokenized filenames into strings, the
//! Gnutella cores cloned a term string per flooded neighbor, `FileStore`
//! matched via per-file `HashSet<String>`, and the QRP Bloom filters
//! re-hashed raw bytes on every check. This crate replaces that spine with
//! interned [`TermId`]s:
//!
//! * [`TermId`] — a dense `u32` into the process-wide [term table]. The
//!   table retains, per term, its text, its byte length (so Gnutella 0.6
//!   wire-size accounting stays faithful to the joined-string framing) and
//!   its QRP double-hash pair (so Bloom filters never re-hash bytes and
//!   produce *bit-identical* filters to the string path).
//! * [`Terms`] — an immutable, `Arc`-shared term list with its wire length
//!   and QRP hashes precomputed once. Flooding a query to N neighbors
//!   clones a pointer, not N strings, and every relay hop re-uses the
//!   cached hashes for last-hop QRP checks.
//! * [`scan`] — the one shared tokenizer (lowercase alphanumeric runs,
//!   order kept, duplicates kept): exactly the semantics both
//!   `gnutella::files::tokenize` and `workload::words::tokenize` had.
//! * [`policy`] — PIERSearch's §3.1 indexing policy *layered on top* of
//!   the shared scanner: stop-words out, single characters out,
//!   first-occurrence dedup. Plain Gnutella deliberately skips this layer
//!   (the paper's asymmetry: "Stop-words … are usually not considered" by
//!   PIERSearch, while Gnutella matches every token).
//!
//! Ids are assigned in first-intern order, which may differ between runs
//! (parallel sweep trials intern concurrently). Nothing observable may
//! therefore depend on id *values*: matching compares ids for equality,
//! wire sizes come from retained byte lengths, Bloom bits from hashes of
//! the term bytes, and persistence ([`ser_ids`]/[`IdsFromStrings`])
//! round-trips through the term *strings*.
//!
//! [term table]: intern

mod counter;

pub use counter::{pack_pair, IdCounter};

use pier_netsim::split_mix64;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock, RwLock};

// ---------------------------------------------------------------------------
// TermId + the global table
// ---------------------------------------------------------------------------

/// An interned term: a dense index into the process-wide term table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// Dense index into per-term side tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TermId({} = {:?})", self.0, &*text(*self))
    }
}

struct TermInfo {
    text: Arc<str>,
    /// UTF-8 byte length (what the joined-query wire framing counts).
    byte_len: u32,
    /// Kirsch–Mitzenmacher double-hash pair for QRP Bloom filters,
    /// precomputed from the term bytes at intern time.
    qrp: (u64, u64),
    /// Passes the PIERSearch indexing policy (≥ 2 bytes, not a stop-word).
    indexable: bool,
}

#[derive(Default)]
struct Table {
    by_text: HashMap<Arc<str>, TermId>,
    terms: Vec<TermInfo>,
}

fn table() -> &'static RwLock<Table> {
    static TABLE: OnceLock<RwLock<Table>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Table::default()))
}

/// The QRP double-hash pair of a term — the exact per-byte mix the Bloom
/// filter historically applied, so cached-hash filters stay bit-identical
/// to freshly hashed ones.
fn qrp_hash_pair(term: &str) -> (u64, u64) {
    let mut state = 0xF11E_D00D_u64;
    for b in term.as_bytes() {
        state = state.rotate_left(8) ^ (*b as u64);
        split_mix64(&mut state);
    }
    let h1 = split_mix64(&mut state);
    let h2 = split_mix64(&mut state) | 1;
    (h1, h2)
}

/// Intern `term`, returning its id. Idempotent and thread-safe; ids are
/// assigned in first-intern order for the lifetime of the process.
///
/// The table is append-only and never evicts: anything interned stays
/// resident. Workload generation bounds its junk contribution to
/// O(`miss_rate` × queries) throwaway miss-query terms per generated
/// trace — dozens to a few thousand entries per trial, shared across
/// trials when the random suffixes collide. An eviction/scoping story
/// only becomes worth it if traces start interning unbounded unique
/// content (see ROADMAP).
pub fn intern(term: &str) -> TermId {
    if let Some(&id) = table().read().expect("term table poisoned").by_text.get(term) {
        return id;
    }
    let mut t = table().write().expect("term table poisoned");
    if let Some(&id) = t.by_text.get(term) {
        return id;
    }
    let id = TermId(u32::try_from(t.terms.len()).expect("term id space exhausted"));
    let text: Arc<str> = Arc::from(term);
    t.terms.push(TermInfo {
        text: text.clone(),
        byte_len: term.len() as u32,
        qrp: qrp_hash_pair(term),
        indexable: term.len() >= 2 && !policy::is_stop_word(term),
    });
    t.by_text.insert(text, id);
    id
}

/// The id of an already-interned term, or `None`.
pub fn lookup(term: &str) -> Option<TermId> {
    table().read().expect("term table poisoned").by_text.get(term).copied()
}

/// The term's text (cheap `Arc` clone).
pub fn text(id: TermId) -> Arc<str> {
    table().read().expect("term table poisoned").terms[id.index()].text.clone()
}

/// The term's UTF-8 byte length.
pub fn byte_len(id: TermId) -> usize {
    table().read().expect("term table poisoned").terms[id.index()].byte_len as usize
}

/// The term's precomputed QRP double-hash pair.
pub fn qrp_hashes(id: TermId) -> (u64, u64) {
    table().read().expect("term table poisoned").terms[id.index()].qrp
}

/// The QRP hash pairs of a whole slice, under one table read — the batch
/// form QRP filter construction uses.
pub fn qrp_hashes_of(ids: &[TermId]) -> Vec<(u64, u64)> {
    let t = table().read().expect("term table poisoned");
    ids.iter().map(|id| t.terms[id.index()].qrp).collect()
}

/// Number of distinct terms interned so far.
pub fn vocab_len() -> usize {
    table().read().expect("term table poisoned").terms.len()
}

/// Resolve a slice of ids to owned strings (test/driver convenience).
pub fn texts_of(ids: &[TermId]) -> Vec<String> {
    let t = table().read().expect("term table poisoned");
    ids.iter().map(|id| t.terms[id.index()].text.to_string()).collect()
}

/// Join the ids' texts with spaces — the Gnutella 0.6 query payload text.
pub fn join_text(ids: &[TermId]) -> String {
    let t = table().read().expect("term table poisoned");
    let mut out = String::new();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&t.terms[id.index()].text);
    }
    out
}

// ---------------------------------------------------------------------------
// The shared scanner
// ---------------------------------------------------------------------------

/// The one scanner loop: visit each lowercase alphanumeric run of `name`
/// in order (duplicates included). Both the string and the interning form
/// are thin wrappers, so tokenization can never drift between them.
fn scan_with(name: &str, mut visit: impl FnMut(&mut String)) {
    let mut cur = String::new();
    for ch in name.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            visit(&mut cur);
            cur.clear();
        }
    }
    if !cur.is_empty() {
        visit(&mut cur);
    }
}

/// Tokenize into lowercase alphanumeric runs, **as strings** — the shared
/// scanner both protocol families build on (reference form; [`scan`] is
/// the interning form).
pub fn scan_text(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    scan_with(name, |tok| out.push(tok.clone()));
    out
}

/// Tokenize into interned ids: lowercase alphanumeric runs, order kept,
/// duplicates kept — Gnutella token semantics (no stop-word filtering).
pub fn scan(name: &str) -> Vec<TermId> {
    let mut out = Vec::new();
    scan_with(name, |tok| out.push(intern(tok)));
    out
}

/// Does the (pre-tokenized) query match the file's tokens under Gnutella
/// semantics? Every query term must appear among the file's tokens.
pub fn matches(query_terms: &[TermId], file_tokens: &[TermId]) -> bool {
    !query_terms.is_empty() && query_terms.iter().all(|t| file_tokens.contains(t))
}

// ---------------------------------------------------------------------------
// The PIERSearch indexing policy (layered on the scanner)
// ---------------------------------------------------------------------------

pub mod policy {
    //! PIERSearch's §3.1 keyword policy: the shared scanner's tokens minus
    //! stop-words and single characters, deduplicated in first-occurrence
    //! order. Plain Gnutella deliberately does **not** apply this layer.

    use super::{scan, table, TermId};

    /// Stop-words never indexed or queried. Mix of English function words
    /// and filesharing boilerplate (extensions, rip tags).
    pub const STOP_WORDS: &[&str] = &[
        "the", "a", "an", "of", "and", "or", "to", "in", "on", "for", "by", "at", "vs", "mp3",
        "mp4", "avi", "mpg", "mpeg", "wav", "ogg", "wma", "mov", "zip", "rar", "exe", "jpg", "gif",
        "txt", "pdf", "iso", "bin", "cd", "dvd", "divx", "xvid", "rip", "www", "com", "net", "org",
    ];

    /// Is this (lowercase) token a stop-word?
    pub fn is_stop_word(token: &str) -> bool {
        STOP_WORDS.contains(&token)
    }

    /// Does the term pass the indexing policy (≥ 2 bytes, not a
    /// stop-word)? The verdict is cached in the term table at intern time.
    pub fn indexable(id: TermId) -> bool {
        table().read().expect("term table poisoned").terms[id.index()].indexable
    }

    /// Apply the policy to a scanned token list: drop non-indexable terms
    /// and duplicates, keeping first-occurrence order.
    pub fn filter_indexable(ids: &[TermId]) -> Vec<TermId> {
        let t = table().read().expect("term table poisoned");
        let mut out: Vec<TermId> = Vec::with_capacity(ids.len());
        for &id in ids {
            if t.terms[id.index()].indexable && !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }

    /// Tokenize a filename into indexable keywords: the shared scanner
    /// plus this policy layer (the historical `piersearch::keywords`).
    pub fn keywords(name: &str) -> Vec<TermId> {
        filter_indexable(&scan(name))
    }
}

// ---------------------------------------------------------------------------
// Terms: the shared wire payload
// ---------------------------------------------------------------------------

struct TermsInner {
    ids: Box<[TermId]>,
    /// Bytes of the space-joined query text (Gnutella 0.6 framing):
    /// Σ byte_len + (n − 1) separators; 0 when empty.
    wire_len: u32,
    /// Per-term QRP hash pairs, for lock-free Bloom checks at every hop.
    qrp: Box<[(u64, u64)]>,
}

/// An immutable, reference-counted term list — the keyword payload every
/// protocol message carries. Cloning is an `Arc` bump; the wire length and
/// QRP hashes are computed once at construction.
#[derive(Clone)]
pub struct Terms(Arc<TermsInner>);

impl Terms {
    /// Build from already-interned ids (one table read for the caches).
    pub fn from_ids(ids: Vec<TermId>) -> Terms {
        let t = table().read().expect("term table poisoned");
        let mut wire = 0u32;
        let mut qrp = Vec::with_capacity(ids.len());
        for &id in &ids {
            let info = &t.terms[id.index()];
            wire += info.byte_len;
            qrp.push(info.qrp);
        }
        drop(t);
        wire += ids.len().saturating_sub(1) as u32;
        Terms(Arc::new(TermsInner {
            ids: ids.into_boxed_slice(),
            wire_len: wire,
            qrp: qrp.into_boxed_slice(),
        }))
    }

    /// Scan + intern a query string (driver/test boundary; protocol paths
    /// pass `Terms` along by clone).
    pub fn from_text(query: &str) -> Terms {
        Terms::from_ids(scan(query))
    }

    pub fn ids(&self) -> &[TermId] {
        &self.0.ids
    }

    /// Bytes this term list occupies in a Gnutella 0.6 query payload —
    /// identical to the byte length of [`Terms::text`].
    pub fn wire_len(&self) -> usize {
        self.0.wire_len as usize
    }

    /// The precomputed QRP hash pair per term.
    pub fn qrp_hashes(&self) -> &[(u64, u64)] {
        &self.0.qrp
    }

    /// The space-joined query text (resolves through the table).
    pub fn text(&self) -> String {
        join_text(&self.0.ids)
    }
}

impl Deref for Terms {
    type Target = [TermId];
    fn deref(&self) -> &[TermId] {
        &self.0.ids
    }
}

impl PartialEq for Terms {
    fn eq(&self, other: &Self) -> bool {
        self.0.ids == other.0.ids
    }
}

impl Eq for Terms {}

impl std::hash::Hash for Terms {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.ids.hash(state);
    }
}

impl fmt::Debug for Terms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Terms({:?})", self.text())
    }
}

impl From<&str> for Terms {
    fn from(query: &str) -> Terms {
        Terms::from_text(query)
    }
}

impl From<&String> for Terms {
    fn from(query: &String) -> Terms {
        Terms::from_text(query)
    }
}

impl From<String> for Terms {
    fn from(query: String) -> Terms {
        Terms::from_text(&query)
    }
}

impl From<&Terms> for Terms {
    fn from(terms: &Terms) -> Terms {
        terms.clone()
    }
}

impl From<Vec<TermId>> for Terms {
    fn from(ids: Vec<TermId>) -> Terms {
        Terms::from_ids(ids)
    }
}

impl From<&[TermId]> for Terms {
    fn from(ids: &[TermId]) -> Terms {
        Terms::from_ids(ids.to_vec())
    }
}

// ---------------------------------------------------------------------------
// Serde: ids persist as their strings (ids are process-local)
// ---------------------------------------------------------------------------

/// Serialize a slice of ids as the sequence of term strings — the portable
/// on-disk form (id values are assigned per process and must never be
/// persisted raw).
pub fn ser_ids<S: serde::Serializer>(ids: &[TermId], s: S) -> Result<S::Ok, S::Error> {
    use serde::ser::SerializeSeq;
    let t = table().read().expect("term table poisoned");
    let mut seq = s.serialize_seq(Some(ids.len()))?;
    for id in ids {
        seq.serialize_element(&*t.terms[id.index()].text)?;
    }
    seq.end()
}

/// Deserialization adapter: a sequence of term strings, interned back into
/// ids on load.
pub struct IdsFromStrings(pub Vec<TermId>);

impl<'de> serde::Deserialize<'de> for IdsFromStrings {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let strings: Vec<String> = serde::Deserialize::deserialize(d)?;
        Ok(IdsFromStrings(strings.iter().map(|s| intern(s)).collect()))
    }
}

impl serde::Serialize for Terms {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ser_ids(self.ids(), s)
    }
}

impl<'de> serde::Deserialize<'de> for Terms {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let IdsFromStrings(ids) = serde::Deserialize::deserialize(d)?;
        Ok(Terms::from_ids(ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_distinct() {
        let a = intern("zeppelin");
        let b = intern("zeppelin");
        let c = intern("floyd");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(&*text(a), "zeppelin");
        assert_eq!(byte_len(a), 8);
        assert_eq!(lookup("zeppelin"), Some(a));
    }

    #[test]
    fn scan_matches_scan_text() {
        let name = "The_Led-Zeppelin.Stairway (live).MP3";
        let ids = scan(name);
        assert_eq!(texts_of(&ids), scan_text(name));
        assert_eq!(scan_text(name), vec!["the", "led", "zeppelin", "stairway", "live", "mp3"]);
        assert!(scan("___").is_empty());
    }

    #[test]
    fn scan_keeps_duplicates_policy_dedups() {
        let ids = scan("live live at leeds live.mp3");
        assert_eq!(texts_of(&ids), vec!["live", "live", "at", "leeds", "live", "mp3"]);
        let kw = policy::filter_indexable(&ids);
        assert_eq!(texts_of(&kw), vec!["live", "leeds"]);
        assert_eq!(policy::keywords("live live at leeds live.mp3"), kw);
    }

    #[test]
    fn policy_flags_cached_at_intern() {
        assert!(!policy::indexable(intern("mp3")), "stop-word");
        assert!(!policy::indexable(intern("x")), "single char");
        assert!(policy::indexable(intern("zz")));
        // Multi-byte single characters are ≥ 2 bytes, matching the
        // historical byte-length rule.
        assert!(policy::indexable(intern("ö")));
    }

    #[test]
    fn terms_wire_len_equals_joined_text_len() {
        for q in ["led zeppelin", "x", "", "björk jóga 03"] {
            let t = Terms::from_text(q);
            assert_eq!(t.wire_len(), t.text().len(), "query {q:?}");
        }
        assert_eq!(Terms::from_text("led zep").wire_len(), 7);
        assert_eq!(Terms::from_text("").wire_len(), 0);
    }

    #[test]
    fn terms_qrp_hashes_match_table() {
        let t = Terms::from_text("led zeppelin");
        assert_eq!(t.qrp_hashes().len(), 2);
        assert_eq!(t.qrp_hashes()[0], qrp_hashes(t.ids()[0]));
        assert_eq!(t.qrp_hashes()[1], qrp_hashes(intern("zeppelin")));
        // h2 is forced odd (double hashing needs it coprime with the table
        // size in the power-of-two case).
        assert_eq!(t.qrp_hashes()[0].1 & 1, 1);
    }

    #[test]
    fn terms_clone_shares_storage() {
        let a = Terms::from_text("one two three");
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.ids().as_ptr(), b.ids().as_ptr()), "clone must share the Arc");
    }

    #[test]
    fn matches_semantics() {
        let toks = scan("banero_kiluda_live.mp3");
        assert!(matches(&scan("banero kiluda"), &toks));
        assert!(!matches(&scan("banero zzz"), &toks));
        assert!(!matches(&[], &toks), "empty query matches nothing");
    }

    #[test]
    fn ids_round_trip_through_strings() {
        let original = scan("portable_serde_check.mp3");
        struct Wrap(Vec<TermId>);
        impl serde::Serialize for Wrap {
            fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                ser_ids(&self.0, s)
            }
        }
        let bytes = pier_codec::to_bytes(&Wrap(original.clone())).unwrap();
        let IdsFromStrings(back) = pier_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, original);
        // Terms round-trips the same way (ids resolve back through text).
        let t = Terms::from_ids(original);
        let bytes = pier_codec::to_bytes(&t).unwrap();
        let t2: Terms = pier_codec::from_bytes(&bytes).unwrap();
        assert_eq!(t2, t);
        assert_eq!(t2.wire_len(), t.wire_len());
    }
}
