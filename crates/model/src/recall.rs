//! Trace-driven recall evaluation (§6.2–§6.3): average QR and QDR of a
//! hybrid system given which replicas are published into the DHT.

use crate::gnutella_pf::pf_gnutella_frac;

/// A query trace reduced to what the model needs: per-file replica counts
/// and, per query, the matching file indices.
pub struct TraceView {
    /// Replica count per distinct file.
    pub replicas: Vec<u32>,
    /// Per query: indices into `replicas` of the matching distinct files.
    /// Queries with no matches are retained (they contribute to zero-result
    /// statistics but are skipped by recall averages, which are undefined
    /// on empty result sets).
    pub queries: Vec<Vec<u32>>,
    /// Network size (hosts) the horizon fraction refers to.
    pub hosts: u64,
}

/// How many replicas of each file are published into the DHT. Produced by
/// the publishing schemes in [`crate::schemes`].
pub struct PublishedSet {
    pub per_file: Vec<u32>,
}

impl PublishedSet {
    /// Nothing published (pure Gnutella).
    pub fn none(files: usize) -> Self {
        PublishedSet { per_file: vec![0; files] }
    }

    /// Fraction of all instances published — the x-axis ("publishing
    /// overhead / budget") of Figures 10 and 13–15.
    pub fn overhead(&self, replicas: &[u32]) -> f64 {
        let pub_count: u64 = self.per_file.iter().map(|&k| k as u64).sum();
        let total: u64 = replicas.iter().map(|&r| r as u64).sum();
        if total == 0 {
            0.0
        } else {
            pub_count as f64 / total as f64
        }
    }
}

impl TraceView {
    /// Average Query Recall: per query, the expected fraction of matching
    /// *instances* returned by the hybrid system; averaged over queries
    /// with at least one match.
    ///
    /// A published replica is always found (the DHT index is exact); an
    /// unpublished replica is found iff its host falls inside the flooding
    /// horizon, i.e. with probability `horizon_frac`.
    pub fn avg_qr(&self, horizon_frac: f64, published: &PublishedSet) -> f64 {
        assert_eq!(published.per_file.len(), self.replicas.len());
        let mut sum = 0.0;
        let mut counted = 0usize;
        for q in &self.queries {
            let mut found = 0.0;
            let mut total = 0.0;
            for &fi in q {
                let r = self.replicas[fi as usize] as f64;
                let k = (published.per_file[fi as usize] as f64).min(r);
                found += k + (r - k) * horizon_frac;
                total += r;
            }
            if total > 0.0 {
                sum += found / total;
                counted += 1;
            }
        }
        if counted == 0 {
            0.0
        } else {
            sum / counted as f64
        }
    }

    /// Average Query Distinct Recall: per query, the expected fraction of
    /// matching *distinct files* found. A file with any published replica
    /// is found with certainty (Equation 1 with PF_DHT = 1); otherwise with
    /// the Equation-2 flooding probability.
    pub fn avg_qdr(&self, horizon_frac: f64, published: &PublishedSet) -> f64 {
        assert_eq!(published.per_file.len(), self.replicas.len());
        let mut sum = 0.0;
        let mut counted = 0usize;
        for q in &self.queries {
            if q.is_empty() {
                continue;
            }
            let mut found = 0.0;
            for &fi in q {
                let r = self.replicas[fi as usize];
                found += if published.per_file[fi as usize] > 0 {
                    1.0
                } else {
                    pf_gnutella_frac(self.hosts, horizon_frac, r as u64)
                };
            }
            sum += found / q.len() as f64;
            counted += 1;
        }
        if counted == 0 {
            0.0
        } else {
            sum / counted as f64
        }
    }

    /// Fraction of queries expected to return nothing: no file matched, or
    /// every matching file was both unpublished and missed by the flood.
    pub fn zero_result_fraction(&self, horizon_frac: f64, published: &PublishedSet) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let mut zero = 0.0;
        for q in &self.queries {
            let mut p_all_missed = 1.0;
            for &fi in q {
                let r = self.replicas[fi as usize];
                let p_found = if published.per_file[fi as usize] > 0 {
                    1.0
                } else {
                    pf_gnutella_frac(self.hosts, horizon_frac, r as u64)
                };
                p_all_missed *= 1.0 - p_found;
            }
            zero += p_all_missed; // empty query: product over nothing = 1
        }
        zero / self.queries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 files: a singleton, a pair, a 10-replica, a 100-replica; three
    /// queries touching different mixes.
    fn view() -> TraceView {
        TraceView {
            replicas: vec![1, 2, 10, 100],
            queries: vec![
                vec![0],          // rare only
                vec![3],          // popular only
                vec![0, 1, 2, 3], // mixed
                vec![],           // no match
            ],
            hosts: 1_000,
        }
    }

    #[test]
    fn no_publishing_recall_equals_horizon() {
        let v = view();
        let none = PublishedSet::none(4);
        // "when no items are published ... the average query recall is
        // equal to the percentage of nodes in the search horizon."
        for h in [0.05, 0.15, 0.30] {
            let qr = v.avg_qr(h, &none);
            assert!((qr - h).abs() < 1e-12, "h={h} qr={qr}");
        }
    }

    #[test]
    fn full_publishing_gives_full_recall() {
        let v = view();
        let all = PublishedSet { per_file: v.replicas.clone() };
        assert!((v.avg_qr(0.05, &all) - 1.0).abs() < 1e-12);
        assert!((v.avg_qdr(0.05, &all) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn publishing_rare_items_lifts_rare_queries_most() {
        let v = view();
        let none = PublishedSet::none(4);
        // Publish only the singleton (replica threshold 1).
        let t1 = PublishedSet { per_file: vec![1, 0, 0, 0] };
        let h = 0.05;
        // Query 0 (rare only) jumps from h to 1.
        let q0_before = v.avg_qdr(h, &none);
        let q0_after = v.avg_qdr(h, &t1);
        assert!(q0_after > q0_before);
        // QR gain: query 0 contributes 1.0 instead of 0.05.
        let qr = v.avg_qr(h, &t1);
        assert!(qr > v.avg_qr(h, &none) + 0.25, "large jump expected, got {qr}");
    }

    #[test]
    fn qdr_at_least_qr_for_perfect_publishing() {
        // Publishing by threshold makes QDR ≥ QR (duplicates don't help
        // QDR, but finding *one* replica suffices).
        let v = view();
        for t in 0..=10u32 {
            let per_file: Vec<u32> =
                v.replicas.iter().map(|&r| if r <= t { r } else { 0 }).collect();
            let p = PublishedSet { per_file };
            let qr = v.avg_qr(0.15, &p);
            let qdr = v.avg_qdr(0.15, &p);
            assert!(qdr >= qr - 1e-9, "t={t}: QDR {qdr} < QR {qr}");
        }
    }

    #[test]
    fn overhead_is_instance_mass() {
        let v = view();
        let t2 = PublishedSet { per_file: vec![1, 2, 0, 0] };
        // 3 published of 113 instances.
        assert!((t2.overhead(&v.replicas) - 3.0 / 113.0).abs() < 1e-12);
        assert_eq!(PublishedSet::none(4).overhead(&v.replicas), 0.0);
    }

    #[test]
    fn zero_results_drop_when_rare_published() {
        let v = view();
        let none = PublishedSet::none(4);
        let t1 = PublishedSet { per_file: vec![1, 0, 0, 0] };
        let h = 0.05;
        let before = v.zero_result_fraction(h, &none);
        let after = v.zero_result_fraction(h, &t1);
        assert!(after < before);
        // The empty query contributes 1/4 forever (nothing to find).
        assert!(after >= 0.25);
    }

    #[test]
    fn recall_monotone_in_threshold() {
        let v = view();
        let mut prev_qr = 0.0;
        let mut prev_qdr = 0.0;
        for t in 0..=100u32 {
            let per_file: Vec<u32> =
                v.replicas.iter().map(|&r| if r <= t { r } else { 0 }).collect();
            let p = PublishedSet { per_file };
            let qr = v.avg_qr(0.05, &p);
            let qdr = v.avg_qdr(0.05, &p);
            assert!(qr >= prev_qr - 1e-12);
            assert!(qdr >= prev_qdr - 1e-12);
            prev_qr = qr;
            prev_qdr = qdr;
        }
        assert!((prev_qr - 1.0).abs() < 1e-9, "threshold ≥ max replicas ⇒ full recall");
    }
}
