//! The §6.2 sweep curves: Figures 9 (PF-threshold), 10 (publishing
//! overhead), 11 (QR), and 12 (QDR) as functions of the replica threshold.

use crate::gnutella_pf::pf_gnutella_frac;
use crate::recall::{PublishedSet, TraceView};

/// One row of the Figure 9 curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PfThresholdPoint {
    pub replica_threshold: u32,
    pub pf_threshold: f64,
}

/// Figure 9: the lower bound on PF_hybrid over all items, as a function of
/// the replica threshold. Items with `R ≤ t` are published (PF = 1); the
/// worst remaining item has `R = t + 1`, so the bound is Eq. (2) at
/// `r = t + 1`.
pub fn pf_threshold_curve(
    hosts: u64,
    horizon_frac: f64,
    thresholds: impl IntoIterator<Item = u32>,
) -> Vec<PfThresholdPoint> {
    thresholds
        .into_iter()
        .map(|t| PfThresholdPoint {
            replica_threshold: t,
            pf_threshold: pf_gnutella_frac(hosts, horizon_frac, t as u64 + 1),
        })
        .collect()
}

/// One row of the Figures 10–12 sweeps.
#[derive(Clone, Copy, Debug)]
pub struct ThresholdSweepPoint {
    pub replica_threshold: u32,
    /// Fraction of item instances published (Fig. 10).
    pub overhead: f64,
    /// Average query recall (Fig. 11).
    pub avg_qr: f64,
    /// Average query distinct recall (Fig. 12).
    pub avg_qdr: f64,
}

/// Sweep the replica threshold with Perfect publishing over a trace —
/// Figures 10, 11, and 12 in one pass.
pub fn threshold_sweep(
    view: &TraceView,
    horizon_frac: f64,
    thresholds: impl IntoIterator<Item = u32>,
) -> Vec<ThresholdSweepPoint> {
    thresholds
        .into_iter()
        .map(|t| {
            let per_file: Vec<u32> =
                view.replicas.iter().map(|&r| if r <= t { r } else { 0 }).collect();
            let p = PublishedSet { per_file };
            ThresholdSweepPoint {
                replica_threshold: t,
                overhead: p.overhead(&view.replicas),
                avg_qr: view.avg_qr(horizon_frac, &p),
                avg_qdr: view.avg_qdr(horizon_frac, &p),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape_diminishing_increase() {
        let curve = pf_threshold_curve(75_129, 0.15, 0..=20);
        assert_eq!(curve.len(), 21);
        // Threshold 0: nothing published; bound = PF at R=1 = horizon.
        assert!((curve[0].pf_threshold - 0.15).abs() < 0.01);
        // Strictly increasing with diminishing increments.
        for w in curve.windows(2) {
            assert!(w[1].pf_threshold > w[0].pf_threshold);
        }
        let d_first = curve[1].pf_threshold - curve[0].pf_threshold;
        let d_last = curve[20].pf_threshold - curve[19].pf_threshold;
        assert!(d_first > d_last, "increments must diminish");
        // Horizon ordering (the paper's three curves never cross).
        let lo = pf_threshold_curve(75_129, 0.05, 0..=20);
        let hi = pf_threshold_curve(75_129, 0.30, 0..=20);
        for i in 0..21 {
            assert!(lo[i].pf_threshold < curve[i].pf_threshold);
            assert!(curve[i].pf_threshold < hi[i].pf_threshold);
        }
    }

    fn toy_view() -> TraceView {
        TraceView {
            replicas: vec![1, 1, 2, 3, 10, 50],
            queries: vec![vec![0], vec![2, 3], vec![4, 5], vec![1, 5]],
            hosts: 1_000,
        }
    }

    #[test]
    fn sweep_monotone_and_saturating() {
        let view = toy_view();
        let sweep = threshold_sweep(&view, 0.05, 0..=50);
        assert!((sweep[0].overhead - 0.0).abs() < 1e-12);
        assert!((sweep[0].avg_qr - 0.05).abs() < 1e-12, "threshold 0 = pure flooding");
        for w in sweep.windows(2) {
            assert!(w[1].overhead >= w[0].overhead);
            assert!(w[1].avg_qr >= w[0].avg_qr - 1e-12);
            assert!(w[1].avg_qdr >= w[0].avg_qdr - 1e-12);
        }
        let last = sweep.last().unwrap();
        assert!((last.overhead - 1.0).abs() < 1e-12);
        assert!((last.avg_qr - 1.0).abs() < 1e-12);
        assert!((last.avg_qdr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qdr_saturates_faster_than_qr() {
        // "publishing only items with one or two replicas raises QR to 68%
        // and QDR to 93%" — QDR rises much faster. Verify the ordering on
        // the toy trace.
        let view = toy_view();
        let sweep = threshold_sweep(&view, 0.15, [2]);
        assert!(sweep[0].avg_qdr > sweep[0].avg_qr);
    }
}
