#![forbid(unsafe_code)]
//! # pier-model — the analytical model of §6
//!
//! Pure math, no I/O: Equation (2)'s hypergeometric find-probability for
//! flooding ([`pf_gnutella`]), the hybrid-system equations (1) and (3)–(5)
//! ([`cost`]), trace-driven average QR / QDR evaluation ([`TraceView`]),
//! the §6.2 replica-threshold sweeps behind Figures 9–12 ([`curves`]), and
//! the §6.3 trace-driven comparison of the rare-item publishing schemes —
//! Perfect, Random, TF, TPF, SAM — behind Figures 13–15 ([`schemes`]).
//!
//! Inputs are plain arrays (replica counts, per-query match lists, token
//! lists), so the crate composes with synthetic traces from
//! `pier-workload`, with live simulation output, or with hand-built
//! fixtures in tests.

pub mod cost;
pub mod curves;
mod gnutella_pf;
mod recall;
pub mod schemes;

pub use cost::{DhtCosts, ItemParams};
pub use curves::{pf_threshold_curve, threshold_sweep, PfThresholdPoint, ThresholdSweepPoint};
pub use gnutella_pf::{expected_replica_fraction, pf_gnutella, pf_gnutella_frac};
pub use recall::{PublishedSet, TraceView};
pub use schemes::SchemeInput;
