//! Trace-driven evaluation of the rare-item publishing schemes (§5, §6.3):
//! Perfect, Random, TF, TPF, and SAM, each mapping a threshold to the set
//! of replicas published into the DHT.

use crate::recall::PublishedSet;
use pier_netsim::{stream_rng, SimRng};
use pier_vocab::TermId;
use rand::Rng;
use std::collections::HashMap;

/// Per-file inputs the schemes inspect: tokenized name + replica count.
pub struct SchemeInput<'a> {
    /// Interned tokens of each distinct file's name.
    pub tokens: &'a [Vec<TermId>],
    /// Replica count of each distinct file.
    pub replicas: &'a [u32],
}

impl SchemeInput<'_> {
    fn check(&self) {
        assert_eq!(self.tokens.len(), self.replicas.len());
    }
}

/// Perfect (§6.2): publish every replica of files with `R ≤ t`. Needs
/// global knowledge — the upper bound the practical schemes chase.
pub fn perfect(input: &SchemeInput<'_>, t: u32) -> PublishedSet {
    input.check();
    PublishedSet { per_file: input.replicas.iter().map(|&r| if r <= t { r } else { 0 }).collect() }
}

/// Random: publish each replica independently with probability `frac`,
/// irrespective of rarity — the lower bound.
pub fn random(input: &SchemeInput<'_>, frac: f64, seed: u64) -> PublishedSet {
    input.check();
    assert!((0.0..=1.0).contains(&frac));
    let mut rng = stream_rng(seed, 0x5EED);
    PublishedSet { per_file: input.replicas.iter().map(|&r| binomial(&mut rng, r, frac)).collect() }
}

/// Term Frequency: a file is rare if any of its terms has observed
/// frequency below `threshold`. All replicas publish (each host applies
/// the same criterion to the same statistics).
pub fn tf(
    input: &SchemeInput<'_>,
    term_freq: &HashMap<TermId, u64>,
    threshold: u64,
) -> PublishedSet {
    input.check();
    let per_file = input
        .tokens
        .iter()
        .zip(input.replicas)
        .map(|(tokens, &r)| {
            let min_tf =
                tokens.iter().map(|t| term_freq.get(t).copied().unwrap_or(0)).min().unwrap_or(0);
            if min_tf < threshold {
                r
            } else {
                0
            }
        })
        .collect();
    PublishedSet { per_file }
}

/// Term *Pair* Frequency: same, over adjacent ordered token pairs —
/// resistant to rare files that contain one popular keyword.
pub fn tpf(
    input: &SchemeInput<'_>,
    pair_freq: &HashMap<(TermId, TermId), u64>,
    threshold: u64,
) -> PublishedSet {
    input.check();
    let per_file = input
        .tokens
        .iter()
        .zip(input.replicas)
        .map(|(tokens, &r)| {
            let min_pf = tokens
                .windows(2)
                .map(|w| pair_freq.get(&(w[0], w[1])).copied().unwrap_or(0))
                .min()
                // Single-token names fall back to "rare" (no pair evidence).
                .unwrap_or(0);
            if min_pf < threshold {
                r
            } else {
                0
            }
        })
        .collect();
    PublishedSet { per_file }
}

/// Sampling: each replica's host samples `sample_frac` of the other hosts,
/// counts the copies it sees (plus its own), and publishes its replica if
/// that lower-bound estimate is ≤ `threshold`. At 100% sampling this
/// coincides with Perfect; at 0% every estimate is 1.
pub fn sam(
    input: &SchemeInput<'_>,
    hosts: u64,
    sample_frac: f64,
    threshold: u32,
    seed: u64,
) -> PublishedSet {
    input.check();
    assert!((0.0..=1.0).contains(&sample_frac));
    assert!(hosts > 0);
    let mut rng = stream_rng(seed, 0x5A11);
    let per_file = input
        .replicas
        .iter()
        .map(|&r| {
            let mut published = 0u32;
            for _ in 0..r {
                // Copies visible in a sample of the other hosts. Sampling
                // without replacement of frac·hosts nodes sees each of the
                // other r−1 copies with probability ≈ sample_frac.
                let seen = binomial(&mut rng, r - 1, sample_frac);
                if seen < threshold {
                    published += 1;
                }
            }
            published
        })
        .collect();
    PublishedSet { per_file }
}

/// Binomial(n, p) sampler: exact Bernoulli loop for small n, normal
/// approximation for large n (adequate for trace simulation).
fn binomial(rng: &mut SimRng, n: u32, p: f64) -> u32 {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        (0..n).filter(|_| rng.random_bool(p)).count() as u32
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // Box-Muller.
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + sd * z).round().clamp(0.0, n as f64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> (Vec<Vec<TermId>>, Vec<u32>) {
        // File 0: rare, unique terms. File 1: a rare file made entirely of
        // *popular* terms (a live-remix with the words reordered) — the
        // case that motivates TPF over TF. File 2: popular. File 3: mid.
        let tok = |s: &str| pier_vocab::scan(s);
        let tokens = vec![
            tok("obscure bootleg"),
            tok("hit popular"),
            tok("popular hit"),
            tok("middling track"),
        ];
        let replicas = vec![1, 2, 500, 20];
        (tokens, replicas)
    }

    fn freq_maps(
        tokens: &[Vec<TermId>],
        replicas: &[u32],
    ) -> (HashMap<TermId, u64>, HashMap<(TermId, TermId), u64>) {
        let mut tf_map = HashMap::new();
        let mut pf_map = HashMap::new();
        for (t, &r) in tokens.iter().zip(replicas) {
            for tok in t {
                *tf_map.entry(*tok).or_insert(0) += r as u64;
            }
            for w in t.windows(2) {
                *pf_map.entry((w[0], w[1])).or_insert(0) += r as u64;
            }
        }
        (tf_map, pf_map)
    }

    #[test]
    fn perfect_thresholds() {
        let (tokens, replicas) = inputs();
        let input = SchemeInput { tokens: &tokens, replicas: &replicas };
        assert_eq!(perfect(&input, 0).per_file, vec![0, 0, 0, 0]);
        assert_eq!(perfect(&input, 1).per_file, vec![1, 0, 0, 0]);
        assert_eq!(perfect(&input, 2).per_file, vec![1, 2, 0, 0]);
        assert_eq!(perfect(&input, 1000).per_file, replicas);
    }

    #[test]
    fn random_overhead_tracks_fraction() {
        let (tokens, replicas) = inputs();
        let big_reps = vec![1000u32; 50];
        let big_toks = vec![tokens[0].clone(); 50];
        let input = SchemeInput { tokens: &big_toks, replicas: &big_reps };
        let p = random(&input, 0.3, 1);
        let overhead = p.overhead(&big_reps);
        assert!((overhead - 0.3).abs() < 0.02, "overhead {overhead}");
        assert_eq!(random(&input, 0.0, 1).overhead(&big_reps), 0.0);
        assert_eq!(random(&input, 1.0, 1).overhead(&big_reps), 1.0);
        let _ = replicas;
    }

    #[test]
    fn tf_publishes_rare_terms_only() {
        let (tokens, replicas) = inputs();
        let (tf_map, _) = freq_maps(&tokens, &replicas);
        let input = SchemeInput { tokens: &tokens, replicas: &replicas };
        // Threshold 5: files whose rarest term occurs < 5 times. Only
        // file 0 qualifies — file 1's terms are all popular (502 each).
        let p = tf(&input, &tf_map, 5);
        assert_eq!(p.per_file, vec![1, 0, 0, 0]);
        // Unknown terms count as frequency 0 → rare.
        let alien = vec![vec![pier_vocab::intern("neverseen")]];
        let alien_reps = vec![7u32];
        let p2 = tf(&SchemeInput { tokens: &alien, replicas: &alien_reps }, &tf_map, 5);
        assert_eq!(p2.per_file, vec![7]);
    }

    #[test]
    fn tpf_catches_rare_files_with_popular_terms() {
        let (tokens, replicas) = inputs();
        let (tf_map, pf_map) = freq_maps(&tokens, &replicas);
        let input = SchemeInput { tokens: &tokens, replicas: &replicas };
        // File 1 ("hit popular") — both terms popular, so TF misses it...
        let by_tf = tf(&input, &tf_map, 3);
        assert_eq!(by_tf.per_file[1], 0, "TF misses the rare file with popular terms");
        // ...but its ordered *pair* (hit, popular) has frequency 2 → TPF
        // catches it, while the popular ordering (popular, hit) stays out.
        let by_tpf = tpf(&input, &pf_map, 3);
        assert_eq!(by_tpf.per_file[1], 2);
        assert_eq!(by_tpf.per_file[2], 0, "popular pairs stay unpublished");
    }

    #[test]
    fn sam_full_sampling_equals_perfect() {
        let (tokens, replicas) = inputs();
        let input = SchemeInput { tokens: &tokens, replicas: &replicas };
        for t in [1u32, 2, 20, 500] {
            let s = sam(&input, 1000, 1.0, t, 9);
            let p = perfect(&input, t);
            assert_eq!(s.per_file, p.per_file, "threshold {t}");
        }
    }

    #[test]
    fn sam_zero_sampling_is_all_or_nothing() {
        let (tokens, replicas) = inputs();
        let input = SchemeInput { tokens: &tokens, replicas: &replicas };
        assert_eq!(sam(&input, 1000, 0.0, 0, 9).per_file, vec![0, 0, 0, 0]);
        assert_eq!(sam(&input, 1000, 0.0, 1, 9).per_file, replicas, "estimate is always 1");
    }

    #[test]
    fn sam_quality_improves_with_sample_size() {
        // With more sampling, fewer replicas of popular files sneak in
        // under the threshold.
        let replicas = vec![200u32; 40];
        let tokens = vec![vec![pier_vocab::intern("x")]; 40];
        let input = SchemeInput { tokens: &tokens, replicas: &replicas };
        let low = sam(&input, 10_000, 0.01, 3, 9);
        let high = sam(&input, 10_000, 0.30, 3, 9);
        let pub_low: u32 = low.per_file.iter().sum();
        let pub_high: u32 = high.per_file.iter().sum();
        assert!(
            pub_high < pub_low,
            "better sampling must reject popular files: {pub_high} vs {pub_low}"
        );
    }

    #[test]
    fn binomial_sampler_statistics() {
        let mut rng = stream_rng(4, 4);
        // Small-n exact path.
        let mean_small: f64 =
            (0..2_000).map(|_| binomial(&mut rng, 20, 0.25) as f64).sum::<f64>() / 2_000.0;
        assert!((mean_small - 5.0).abs() < 0.3, "{mean_small}");
        // Large-n approximation path.
        let mean_large: f64 =
            (0..2_000).map(|_| binomial(&mut rng, 400, 0.5) as f64).sum::<f64>() / 2_000.0;
        assert!((mean_large - 200.0).abs() < 3.0, "{mean_large}");
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
    }
}
