//! Equation (2) of the paper: the probability that flooding over a random
//! horizon finds at least one of `r` replicas.
//!
//! `PF = 1 − Π_{j=0}^{h−1} (1 − r / (N − j))`
//!
//! — the hypergeometric "at least one success when drawing h nodes without
//! replacement from N, of which r hold a replica".

/// P(item with `r` replicas is found | `horizon` nodes of `n` are visited).
///
/// Computed in log space so products over tens of thousands of terms do not
/// underflow. `r = 0` gives 0; `horizon ≥ n − r + 1` forces a find (p = 1).
pub fn pf_gnutella(n: u64, horizon: u64, r: u64) -> f64 {
    assert!(n > 0, "empty network");
    let r = r.min(n);
    let horizon = horizon.min(n);
    if r == 0 || horizon == 0 {
        return 0.0;
    }
    // Pigeonhole: not finding requires all h visited nodes among the n−r
    // non-holders.
    if horizon > n - r {
        return 1.0;
    }
    let mut log_miss = 0.0f64;
    for j in 0..horizon {
        let p_hit = r as f64 / (n - j) as f64;
        log_miss += (1.0 - p_hit).ln();
        if log_miss < -745.0 {
            return 1.0; // product underflowed: a miss is impossible at f64
        }
    }
    1.0 - log_miss.exp()
}

/// Convenience: horizon given as a fraction of the network.
pub fn pf_gnutella_frac(n: u64, horizon_frac: f64, r: u64) -> f64 {
    assert!((0.0..=1.0).contains(&horizon_frac));
    pf_gnutella(n, (horizon_frac * n as f64).round() as u64, r)
}

/// Expected *fraction of replicas* of an item found by the flood — the QR
/// contribution of an unpublished item. Visiting h of n nodes sees each
/// replica with probability h/n.
pub fn expected_replica_fraction(n: u64, horizon: u64) -> f64 {
    assert!(n > 0);
    (horizon.min(n)) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force hypergeometric reference for small values.
    fn reference(n: u64, h: u64, r: u64) -> f64 {
        // P(miss) = C(n-r, h) / C(n, h)
        if h + r > n {
            return 1.0;
        }
        let mut p_miss = 1.0f64;
        for j in 0..h {
            p_miss *= (n - r - j) as f64 / (n - j) as f64;
        }
        1.0 - p_miss
    }

    #[test]
    fn matches_reference_on_small_values() {
        for n in [10u64, 50, 100] {
            for h in [1u64, 5, 10] {
                for r in [0u64, 1, 2, 5] {
                    let got = pf_gnutella(n, h, r);
                    let want = reference(n, h, r);
                    assert!((got - want).abs() < 1e-9, "n={n} h={h} r={r}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn paper_scale_sanity() {
        // 75,129 nodes, 15% horizon, singleton item: PF ≈ 0.15.
        let pf = pf_gnutella_frac(75_129, 0.15, 1);
        assert!((pf - 0.15).abs() < 0.001, "{pf}");
        // Two replicas: 1 - (1-h)² ≈ 0.2775.
        let pf2 = pf_gnutella_frac(75_129, 0.15, 2);
        assert!((pf2 - 0.2775).abs() < 0.002, "{pf2}");
        // A popular item (1000 replicas) is essentially always found.
        assert!(pf_gnutella_frac(75_129, 0.05, 1_000) > 0.999);
    }

    #[test]
    fn monotonicity() {
        let n = 10_000;
        // In replicas.
        let mut prev = 0.0;
        for r in 0..50 {
            let pf = pf_gnutella(n, 500, r);
            assert!(pf >= prev);
            prev = pf;
        }
        // In horizon.
        prev = 0.0;
        for h in [0u64, 1, 10, 100, 1_000, 9_999, 10_000] {
            let pf = pf_gnutella(n, h, 3);
            assert!(pf >= prev, "h={h}");
            prev = pf;
        }
    }

    #[test]
    fn boundary_conditions() {
        assert_eq!(pf_gnutella(100, 0, 5), 0.0);
        assert_eq!(pf_gnutella(100, 5, 0), 0.0);
        assert_eq!(pf_gnutella(100, 100, 1), 1.0);
        assert_eq!(pf_gnutella(100, 96, 5), 1.0, "pigeonhole");
        assert_eq!(pf_gnutella(100, 10, 200), 1.0, "r clamped to n");
        assert!((pf_gnutella(1, 1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_underflow_at_scale() {
        // Large horizon over a huge network with a popular item: the naive
        // product would underflow; the log-space version must return 1.
        let pf = pf_gnutella(1_000_000, 500_000, 10_000);
        assert!((0.0..=1.0).contains(&pf));
        assert!(pf > 0.999999);
    }

    #[test]
    fn expected_fraction_is_linear() {
        assert_eq!(expected_replica_fraction(1000, 150), 0.15);
        assert_eq!(expected_replica_fraction(1000, 2000), 1.0);
    }
}
