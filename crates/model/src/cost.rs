//! The cost side of the analytical model: Equations (1) and (3)–(5) with
//! the Table 1 / Table 2 parameterization.

use crate::gnutella_pf::pf_gnutella;

/// Table 1: system parameters for one item.
#[derive(Clone, Copy, Debug)]
pub struct ItemParams {
    /// N — nodes in the system.
    pub n: u64,
    /// N_horizon — distinct nodes contacted by a Gnutella flood (including
    /// the query node).
    pub horizon: u64,
    /// R_i — replicas of the item.
    pub replicas: u64,
    /// T_i — item lifetime, in time units.
    pub lifetime: f64,
    /// Q_i — queries for the item per time unit.
    pub query_rate: f64,
}

/// DHT cost constants for Equations (3)–(5).
#[derive(Clone, Copy, Debug)]
pub struct DhtCosts {
    /// CS_DHT — messages to answer one query in the DHT (log N with the
    /// InvertedCache option).
    pub search_cost: f64,
    /// CP_DHT — messages to publish the item and its posting-list entries.
    pub publish_cost: f64,
}

impl DhtCosts {
    /// The paper's default: `CS = log₂ N` (InvertedCache single-site
    /// query), `CP = (1 + keywords) · log₂ N` (one put per tuple).
    pub fn typical(n: u64, keywords: usize) -> Self {
        let log_n = (n.max(2) as f64).log2();
        DhtCosts { search_cost: log_n, publish_cost: (1.0 + keywords as f64) * log_n }
    }
}

/// Equation (2) wrapper: PF_{i,Gnutella}.
pub fn pf_found_gnutella(p: &ItemParams) -> f64 {
    pf_gnutella(p.n, p.horizon, p.replicas)
}

/// Equation (1): PF_{i,hybrid} = PF_G + PNF_G · PF_DHT.
pub fn pf_found_hybrid(p: &ItemParams, published: bool) -> f64 {
    let pf_g = pf_found_gnutella(p);
    let pf_dht = if published { 1.0 } else { 0.0 };
    pf_g + (1.0 - pf_g) * pf_dht
}

/// Equation (3): per-time-unit search cost of the item in the hybrid
/// system. Flooding costs `horizon − 1` messages (efficient broadcast);
/// misses fall through to the DHT.
pub fn search_cost_hybrid(p: &ItemParams, costs: &DhtCosts, published: bool) -> f64 {
    let pnf_g = 1.0 - pf_found_gnutella(p);
    let dht_part = if published { pnf_g * costs.search_cost } else { 0.0 };
    p.query_rate * ((p.horizon.saturating_sub(1)) as f64 + dht_part)
}

/// Equation (4): total per-time-unit cost of supporting the item —
/// searching plus amortized (re)publishing over its lifetime.
pub fn overall_cost_hybrid(p: &ItemParams, costs: &DhtCosts, published: bool) -> f64 {
    let publish_part =
        if published { costs.publish_cost / p.lifetime.max(f64::MIN_POSITIVE) } else { 0.0 };
    search_cost_hybrid(p, costs, published) + publish_part
}

/// Equation (5): total publishing cost over a population of items, where
/// `published[i]` says whether item `i` enters the DHT.
pub fn total_publish_cost(items: &[(ItemParams, bool)], costs: &DhtCosts) -> f64 {
    items.iter().filter(|(_, p)| *p).map(|_| costs.publish_cost).sum()
}

/// Pretty-print the Table 1 / Table 2 glossary (the `repro model-params`
/// experiment re-emits the paper's notation tables).
pub fn params_glossary() -> Vec<(&'static str, &'static str)> {
    vec![
        ("N", "Number of nodes in the system"),
        ("N_horizon", "Distinct nodes contacted when a query is flooded (incl. the query node)"),
        ("R_i", "Number of replicas for item i"),
        ("T_i", "Lifetime of item i in the network"),
        ("Q_i", "Frequency that item i is queried per time unit"),
        ("PF_i,Gnutella", "Probability item i is found in the Gnutella network (Eq. 2)"),
        ("PNF_i,Gnutella", "1 − PF_i,Gnutella"),
        ("PF_i,DHT", "Probability item i is published into the DHT"),
        ("PF_i,hybrid", "Probability item i is found in the hybrid system (Eq. 1)"),
        ("CS_i,hybrid", "Cost/time of searching item i in the hybrid system (Eq. 3)"),
        ("CS_i,DHT", "Cost of searching item i in the DHT (≈ log N messages)"),
        ("CP_i,DHT", "Cost of publishing item i and its posting entries into the DHT"),
        ("CO_i,hybrid", "Overall cost/time of supporting item i (Eq. 4)"),
        ("CP_all,hybrid", "Total publishing cost of the hybrid system (Eq. 5)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(replicas: u64) -> ItemParams {
        ItemParams { n: 10_000, horizon: 500, replicas, lifetime: 3_600.0, query_rate: 0.01 }
    }

    #[test]
    fn eq1_publishing_guarantees_find() {
        let rare = item(1);
        assert!(pf_found_gnutella(&rare) < 0.06);
        assert_eq!(pf_found_hybrid(&rare, true), 1.0);
        assert_eq!(pf_found_hybrid(&rare, false), pf_found_gnutella(&rare));
    }

    #[test]
    fn eq3_dht_fallback_costs_little_for_popular_items() {
        let costs = DhtCosts::typical(10_000, 5);
        let popular = item(2_000);
        let rare = item(1);
        // Popular item: almost never falls through to the DHT, so the
        // published and unpublished search costs almost coincide.
        let d_pop = search_cost_hybrid(&popular, &costs, true)
            - search_cost_hybrid(&popular, &costs, false);
        let d_rare =
            search_cost_hybrid(&rare, &costs, true) - search_cost_hybrid(&rare, &costs, false);
        assert!(d_pop < d_rare);
        assert!(d_pop < 1e-4);
        // Flooding dominates either way.
        assert!(search_cost_hybrid(&rare, &costs, true) > 0.01 * 499.0 * 0.99);
    }

    #[test]
    fn eq4_amortizes_publishing_over_lifetime() {
        let costs = DhtCosts::typical(10_000, 5);
        let mut short = item(1);
        short.lifetime = 10.0;
        let mut long = item(1);
        long.lifetime = 100_000.0;
        let c_short = overall_cost_hybrid(&short, &costs, true);
        let c_long = overall_cost_hybrid(&long, &costs, true);
        assert!(c_short > c_long, "short-lived items cost more per time unit");
    }

    #[test]
    fn eq5_sums_published_only() {
        let costs = DhtCosts::typical(1_000, 4);
        let items = vec![(item(1), true), (item(2), false), (item(3), true), (item(9), false)];
        let total = total_publish_cost(&items, &costs);
        assert!((total - 2.0 * costs.publish_cost).abs() < 1e-9);
    }

    #[test]
    fn typical_costs_scale_logarithmically() {
        let small = DhtCosts::typical(1_000, 5);
        let big = DhtCosts::typical(1_000_000, 5);
        assert!(big.search_cost / small.search_cost < 2.1, "log scaling");
        assert!(big.publish_cost > big.search_cost, "publishing multiple tuples costs more");
    }

    #[test]
    fn glossary_covers_both_tables() {
        let g = params_glossary();
        assert_eq!(g.len(), 14);
        assert!(g.iter().any(|(k, _)| *k == "N_horizon"));
        assert!(g.iter().any(|(k, _)| *k == "CP_all,hybrid"));
    }
}
