//! Workspace-level integration tests across the facade crate: cross-crate
//! flows and whole-simulation determinism.

use pier_p2p::dht::{bootstrap, Contact, CtxNet, DhtConfig, DhtCore, DhtMsg, DhtNode};
use pier_p2p::gnutella::{FileMeta, Topology, TopologyConfig};
use pier_p2p::hybrid::{deploy, HybridConfig, HybridUp, RareScheme};
use pier_p2p::netsim::{NodeId, Sim, SimConfig, SimDuration, UniformLatency};
use pier_p2p::piersearch::{IndexMode, PierSearchApp, PierSearchNode};

fn piersearch_net(seed: u64) -> (Sim<DhtMsg>, Vec<NodeId>) {
    let cfg = SimConfig::with_seed(seed)
        .latency(UniformLatency::new(SimDuration::from_millis(15), SimDuration::from_millis(60)));
    let mut sim = Sim::new(cfg);
    let contacts: Vec<Contact> = (0..40).map(|i| Contact::for_node(NodeId::new(i))).collect();
    let ids = contacts
        .iter()
        .map(|c| {
            let mut core = DhtCore::new(DhtConfig::test(), *c);
            bootstrap::fill_table(core.table_mut(), &contacts, 4);
            sim.add_node(DhtNode::new(core, PierSearchApp::new(IndexMode::Inverted), None))
        })
        .collect();
    (sim, ids)
}

/// The facade exposes a full publish→search flow.
#[test]
fn facade_publish_and_search() {
    let (mut sim, ids) = piersearch_net(5);
    sim.with_actor_ctx::<PierSearchNode, _>(ids[3], |node, ctx| {
        let mut net = CtxNet { ctx };
        let host = net.ctx.self_id();
        node.app
            .publisher
            .publish_file(
                &mut node.app.pier,
                &mut node.core,
                &mut net,
                "integration_test_track.mp3",
                123,
                host,
                6346,
            )
            .unwrap();
    });
    sim.run_for(SimDuration::from_secs(15));
    let sid = sim.with_actor_ctx::<PierSearchNode, _>(ids[30], |node, ctx| {
        let mut net = CtxNet { ctx };
        node.app
            .engine
            .start_search(&mut node.app.pier, &mut node.core, &mut net, "integration track")
            .unwrap()
    });
    sim.run_for(SimDuration::from_secs(15));
    let s = sim.actor::<PierSearchNode>(ids[30]).app.engine.search(sid).unwrap();
    assert!(s.done);
    assert_eq!(s.items.len(), 1);
    assert_eq!(s.items[0].filename, "integration_test_track.mp3");
}

/// Bit-level determinism: the same seed must produce identical traffic
/// totals and results; a different seed must not.
#[test]
fn whole_simulation_determinism() {
    let run = |seed: u64| -> (u64, u64, usize) {
        let (mut sim, ids) = piersearch_net(seed);
        for i in 0..10u64 {
            sim.with_actor_ctx::<PierSearchNode, _>(ids[(i as usize) % 40], |node, ctx| {
                let mut net = CtxNet { ctx };
                let host = net.ctx.self_id();
                node.app
                    .publisher
                    .publish_file(
                        &mut node.app.pier,
                        &mut node.core,
                        &mut net,
                        &format!("determinism_check_{i}.mp3"),
                        i,
                        host,
                        6346,
                    )
                    .unwrap();
            });
        }
        sim.run_for(SimDuration::from_secs(20));
        let sid = sim.with_actor_ctx::<PierSearchNode, _>(ids[39], |node, ctx| {
            let mut net = CtxNet { ctx };
            node.app
                .engine
                .start_search(&mut node.app.pier, &mut node.core, &mut net, "determinism check")
                .unwrap()
        });
        sim.run_for(SimDuration::from_secs(20));
        let items =
            sim.actor::<PierSearchNode>(ids[39]).app.engine.search(sid).unwrap().items.len();
        (sim.metrics().total_messages, sim.metrics().total_bytes, items)
    };
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a, b, "same seed ⇒ identical run");
    assert_eq!(a.2, 10, "all ten files found");
    let c = run(5678);
    assert_ne!((a.0, a.1), (c.0, c.1), "different seed ⇒ different traffic");
}

/// Hybrid deployment through the facade: the full §7 stack boots and
/// publishes.
#[test]
fn facade_hybrid_deployment_boots() {
    let cfg = SimConfig::with_seed(99)
        .latency(UniformLatency::new(SimDuration::from_millis(20), SimDuration::from_millis(70)));
    let mut sim = Sim::new(cfg);
    let topo = Topology::generate(&TopologyConfig {
        ultrapeers: 40,
        leaves: 400,
        old_style_fraction: 0.3,
        leaf_ups: 2,
        seed: 99,
    });
    let leaf_files: Vec<Vec<FileMeta>> =
        (0..400).map(|j| vec![FileMeta::new(&format!("share_{j}.mp3"), j as u64)]).collect();
    let deployment = deploy::spawn(
        &mut sim,
        &topo,
        leaf_files,
        &deploy::DeploymentConfig {
            hybrid_ups: 8,
            hybrid: HybridConfig {
                publish_interval: SimDuration::from_millis(300),
                ..Default::default()
            },
            dht: DhtConfig::test(),
        },
        |_| RareScheme::sam(2),
    );
    sim.run_for(SimDuration::from_secs(120));
    let published: u64 =
        deployment.hybrid_ups.iter().map(|&id| sim.actor::<HybridUp>(id).files_published).sum();
    assert!(published > 20, "BrowseHost → scheme → publisher pipeline must flow: {published}");
    // Rate limiting held: no node published faster than one file per 300ms.
    for &id in &deployment.hybrid_ups {
        let n = sim.actor::<HybridUp>(id).files_published;
        assert!(n <= 120_000 / 300 + 1, "rate limit violated: {n}");
    }
}
