//! Workspace determinism smoke test: two simulations built from the same
//! master seed must produce bit-identical metrics — the contract netsim
//! promises ("seeded deterministically, keeps whole-simulation runs
//! bit-reproducible") and every experiment in `pier-bench` relies on.
//!
//! This drives the *Gnutella* stack (topology generation, QRP propagation,
//! dynamic querying), complementing `integration.rs`'s DHT-side
//! determinism check, and compares the complete metrics counter map.

use pier_p2p::gnutella::{spawn, FileMeta, QueryOrigin, Topology, TopologyConfig, UltrapeerNode};
use pier_p2p::netsim::{Sim, SimConfig, SimDuration, UniformLatency};

/// Build a small Gnutella network, run queries, and return every metrics
/// counter the run produced: `(class, count, bytes)` in a canonical order.
fn run_and_snapshot(seed: u64) -> Vec<(&'static str, u64, u64)> {
    let topo = Topology::generate(&TopologyConfig {
        ultrapeers: 24,
        leaves: 240,
        old_style_fraction: 0.3,
        leaf_ups: 2,
        seed,
    });
    let leaf_files: Vec<Vec<FileMeta>> = (0..topo.leaf_count())
        .map(|j| {
            // A few deterministic shares per leaf; filenames overlap across
            // leaves so queries have replicated answers.
            (0..3)
                .map(|k| {
                    FileMeta::new(
                        &format!("shared track {:03}.mp3", (j + k * 7) % 40),
                        1_000 + j as u64,
                    )
                })
                .collect()
        })
        .collect();
    let cfg = SimConfig::with_seed(seed)
        .latency(UniformLatency::new(SimDuration::from_millis(20), SimDuration::from_millis(80)));
    let mut sim = Sim::new(cfg);
    let handles = spawn(&mut sim, &topo, vec![Vec::new(); topo.ultrapeer_count()], leaf_files);
    sim.run_for(SimDuration::from_secs(3)); // QRP propagation

    for (i, &up) in handles.ups.iter().enumerate().take(8) {
        let terms = format!("shared track {:03}", (i * 5) % 40);
        sim.with_actor_ctx::<UltrapeerNode, _>(up, |node, ctx| {
            let mut net = pier_p2p::gnutella::CtxGnutellaNet { ctx };
            node.core.start_query(&mut net, &terms, QueryOrigin::Driver)
        });
        sim.run_for(SimDuration::from_secs(2));
    }
    sim.run_for(SimDuration::from_secs(60));

    let mut counters: Vec<(&'static str, u64, u64)> =
        sim.metrics().counters().map(|(class, c)| (class, c.count, c.bytes)).collect();
    counters.sort_unstable();
    assert!(!counters.is_empty(), "the run must produce traffic");
    counters
}

#[test]
fn same_master_seed_is_bit_reproducible() {
    let a = run_and_snapshot(0xD5_7E_11);
    let b = run_and_snapshot(0xD5_7E_11);
    assert_eq!(a, b, "identical seeds must reproduce every counter exactly");
}

/// Build the sparse lab preset and drive a short query workload through
/// it, returning the full metrics snapshot.
fn sparse_run_and_snapshot() -> Vec<(&'static str, u64, u64)> {
    use pier_bench::lab::{Lab, LabConfig, Scale};
    let mut lab = Lab::build(LabConfig::at(Scale::Sparse));
    let vantages = lab.vantages.clone();
    for (i, &v) in vantages.iter().enumerate().take(6) {
        let terms = lab.trace.queries[i].text();
        lab.sim.with_actor_ctx::<UltrapeerNode, _>(v, |node, ctx| {
            let mut net = pier_p2p::gnutella::CtxGnutellaNet { ctx };
            node.core.start_query(&mut net, &terms, QueryOrigin::Driver)
        });
        lab.sim.run_for(pier_p2p::netsim::SimDuration::from_secs(2));
    }
    lab.sim.run_for(pier_p2p::netsim::SimDuration::from_secs(60));

    let mut counters: Vec<(&'static str, u64, u64)> =
        lab.sim.metrics().counters().map(|(class, c)| (class, c.count, c.bytes)).collect();
    counters.sort_unstable();
    assert!(!counters.is_empty(), "the sparse run must produce traffic");
    counters
}

/// The interning refactor must not perturb RNG streams or event ordering:
/// two identically-seeded sparse-preset runs produce bit-identical
/// metrics snapshots.
#[test]
fn sparse_preset_is_bit_reproducible() {
    let a = sparse_run_and_snapshot();
    let b = sparse_run_and_snapshot();
    assert_eq!(a, b, "sparse preset must reproduce every counter exactly");
}

/// Golden pins for the figs4–7 quick-scale trial at the default seed,
/// captured from the pre-interning (string-keyed) implementation. The
/// term-interning refactor is a pure renaming (string ↔ id), so every
/// statistic — including total traffic accounting — must reproduce these
/// values bit-for-bit. A legitimate workload change must update the pins
/// and say why.
#[test]
fn figs4to7_quick_summary_matches_golden_values() {
    use pier_bench::experiments::figs4to7;
    use pier_bench::lab::DEFAULT_SEED;
    use pier_bench::Scale;

    let summary = figs4to7::trial(Scale::Quick, DEFAULT_SEED, 1);
    let golden: [(&str, f64); 8] = [
        ("le10_single_pct", 43.9375),
        ("zero_single", 13.6875),
        ("zero_union", 4.375),
        ("reduction_pct", 68.03652968036529),
        ("fig4_small_result_rep", 4.865089792923048),
        ("fig4_large_result_rep", 11.196654163094017),
        ("total_messages", 590_553.0),
        ("total_bytes", 78_668_586.0),
    ];
    for (key, want) in golden {
        let got = summary.get(key).unwrap_or_else(|| panic!("stat {key} missing"));
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "stat {key} drifted from the pre-interning golden value: {got} != {want}"
        );
    }
}

#[test]
fn different_master_seed_diverges() {
    let a = run_and_snapshot(1);
    let b = run_and_snapshot(2);
    // Topology, latencies, and query GUIDs all differ; at least one
    // counter (message counts/bytes) must differ too.
    assert_ne!(a, b, "different seeds should not collide on every metric");
}
