//! Vendored minimal `criterion`.
//!
//! The build environment has no network access, so this crate provides a
//! small timing harness with criterion's macro/API shape: `criterion_group!`
//! / `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::iter` / `iter_batched`, `Throughput`, `BatchSize`. It runs a
//! short calibrated measurement and prints mean ns/iter (plus derived
//! throughput) rather than criterion's full statistical analysis.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much setup output to pre-batch in `iter_batched`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for reported throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200u64);
        Criterion { measure_for: Duration::from_millis(ms) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup { criterion: self, name, throughput: None }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.measure_for);
        f(&mut bencher);
        bencher.report(name, None);
        self
    }

    /// Accepted for compatibility; the stub has a single profile.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure_for = d;
        self
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    #[allow(dead_code)]
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure_for = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.criterion.measure_for);
        f(&mut bencher);
        bencher.report(name, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Runs the closed-over routine and records wall time.
pub struct Bencher {
    measure_for: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(measure_for: Duration) -> Self {
        Bencher { measure_for, iters: 0, elapsed: Duration::ZERO }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: find an iteration count that fills the budget.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std_black_box(routine());
            }
            let took = start.elapsed();
            if took >= self.measure_for || n >= 1 << 30 {
                self.iters = n;
                self.elapsed = took;
                return;
            }
            let scale = if took.is_zero() {
                64
            } else {
                (self.measure_for.as_nanos() / took.as_nanos().max(1)).clamp(2, 64) as u64
            };
            n = n.saturating_mul(scale);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std_black_box(routine(input));
            }
            let took = start.elapsed();
            if took >= self.measure_for || n >= 1 << 24 {
                self.iters = n;
                self.elapsed = took;
                return;
            }
            let scale = if took.is_zero() {
                64
            } else {
                (self.measure_for.as_nanos() / took.as_nanos().max(1)).clamp(2, 64) as u64
            };
            n = n.saturating_mul(scale);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("  {name:<40} (no measurement)");
            return;
        }
        let ns_per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let mut line = format!("  {name:<40} {ns_per_iter:>12.1} ns/iter");
        match throughput {
            Some(Throughput::Bytes(b)) | Some(Throughput::BytesDecimal(b)) => {
                let gib_s = b as f64 / ns_per_iter; // bytes/ns == GB/s
                line.push_str(&format!("  ({gib_s:.3} GB/s)"));
            }
            Some(Throughput::Elements(e)) => {
                let melem_s = e as f64 / ns_per_iter * 1e3;
                line.push_str(&format!("  ({melem_s:.2} Melem/s)"));
            }
            None => {}
        }
        println!("{line}");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
