//! Vendored minimal `rand`.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the rand 0.9 API the workspace uses: `SmallRng` (xoshiro256++,
//! seeded via SplitMix64 exactly like the real `SmallRng::seed_from_u64`),
//! the `Rng` extension methods (`random`, `random_range`, `random_bool`,
//! `fill`), `SeedableRng::seed_from_u64`, and `seq::SliceRandom`
//! (`shuffle`/`choose`). All generators are fully deterministic.

pub use rngs::SmallRng;

/// Object-safe core of a random number generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that a generator can produce via `Rng::random`.
pub trait StandardDistribution: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_standard {
    ($($ty:ty),*) => {
        $(
            impl StandardDistribution for $ty {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardDistribution for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardDistribution for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardDistribution for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDistribution for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches rand's
    /// `StandardUniform` construction).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDistribution for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `Rng::random_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "random_range: empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "random_range: empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $ty
                }
            }
        )*
    };
}

uint_range!(u8, u16, u32, u64, usize);

macro_rules! sint_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "random_range: empty range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $ty
                }
            }
            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                    assert!(lo <= hi, "random_range: empty range");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as i64 as $ty;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as i64) as $ty
                }
            }
        )*
    };
}

sint_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing generator methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn random<T: StandardDistribution>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::sample_standard(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same algorithm upstream `SmallRng` uses on
    /// 64-bit targets. Deterministic, fast, and statistically strong for
    /// simulation purposes (not cryptographic).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn split_mix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = split_mix64(&mut state);
            }
            // All-zero state is invalid for xoshiro; SplitMix64 cannot
            // produce four consecutive zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Extension methods on slices (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}
