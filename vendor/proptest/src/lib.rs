//! Vendored minimal `proptest`.
//!
//! The build environment has no network access, so this crate implements
//! the slice of the proptest API the workspace's property tests use:
//!
//! * the `proptest!` macro (`fn name(pat in strategy, ...) { body }`)
//! * `any::<T>()` for primitives and `String`
//! * integer-range, tuple, and regex-literal (`"[a-d]{0,3}"`) strategies
//! * `Just`, `prop_oneof!`, `prop_map`, `prop_recursive`, `boxed`
//! * `prop::collection::{vec, btree_map}`
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!
//! Each test runs `PROPTEST_CASES` (default 64) deterministic random
//! cases seeded from the test's name. There is no shrinking: a failing
//! case reports its seed so it can be replayed.

use std::fmt::Debug;
use std::rc::Rc;

pub mod prelude {
    pub use crate::collection_mod as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

/// Re-export hub so `prop::collection::vec(..)` paths resolve.
pub mod collection_mod {
    pub use crate::collection;
}

/// Default number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

// ---------------------------------------------------------------------------
// RNG (self-contained: SplitMix64-seeded xoshiro256++)
// ---------------------------------------------------------------------------

/// The RNG handed to strategies.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(mut seed: u64) -> Self {
        let mut split = move || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [split(), split(), split(), split()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a strategy for recursive data: `f` receives a strategy for
    /// the inner recursion sites and must return the composite strategy.
    /// Depth is bounded by `depth`; `desired_size`/`expected_branch_size`
    /// are accepted for API compatibility.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            // At each level, mix the base case back in so generation
            // terminates well before the depth bound on average.
            strat = OneOf { options: vec![base.clone(), f(strat).boxed()] }.boxed();
        }
        strat
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A reference-counted, clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of a common value type.
pub struct OneOf<T> {
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

#[doc(hidden)]
pub fn one_of<T>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    OneOf { options }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias towards boundary values now and then, like
                    // real proptest's binary-search-friendly domains.
                    match rng.next_u64() % 16 {
                        0 => 0 as $ty,
                        1 => <$ty>::MAX,
                        2 => <$ty>::MIN,
                        3 => 1 as $ty,
                        _ => rng.next_u64() as $ty,
                    }
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix plain bit patterns (covers NaN/inf/subnormals) with
        // ordinary magnitudes.
        match rng.next_u64() % 4 {
            0 => f64::from_bits(rng.next_u64()),
            1 => 0.0,
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.next_u64() % 4 {
            0 => f32::from_bits(rng.next_u64() as u32),
            1 => 0.0,
            _ => ((rng.unit_f64() - 0.5) * 2e6) as f32,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            let c = match rng.next_u64() % 4 {
                0 => rng.next_u64() % 0x80,      // ASCII
                1 => rng.next_u64() % 0x800,     // 2-byte UTF-8
                _ => rng.next_u64() % 0x11_0000, // anywhere
            };
            if let Some(c) = char::from_u32(c as u32) {
                return c;
            }
        }
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64() & 3 == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(9);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(9);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Range / tuple / regex-literal strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128)
                        % span) as i128;
                    (self.start as i128 + off) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128)
                        % span) as i128;
                    (lo as i128 + off) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $n:tt),+),)*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (S0 0),
    (S0 0, S1 1),
    (S0 0, S1 1, S2 2),
    (S0 0, S1 1, S2 2, S3 3),
    (S0 0, S1 1, S2 2, S3 3, S4 4),
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5),
}

/// String literals act as regex-shaped generators. Supported syntax:
/// literal chars, `[a-z0-9_]` classes, and the `{m,n}`/`{n}`/`?`/`*`/`+`
/// quantifiers on the preceding atom (unbounded repeats cap at 8).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<(Atom, usize, usize)> = Vec::new(); // (atom, min, max)
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 1;
                Atom::Literal(chars[i])
            }
            c => Atom::Literal(c),
        };
        i += 1;
        // Quantifier?
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                    let close = close.expect("unclosed {} quantifier in pattern");
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((lo, hi)) = spec.split_once(',') {
                        (
                            lo.trim().parse().unwrap_or(0),
                            hi.trim()
                                .parse()
                                .unwrap_or_else(|_| lo.trim().parse().unwrap_or(0) + 8),
                        )
                    } else {
                        let n: usize = spec.trim().parse().expect("bad {} quantifier");
                        (n, n)
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }

    let mut out = String::new();
    for (atom, min, max) in atoms {
        let count = if max > min { min + rng.below(max - min + 1) } else { min };
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u32 =
                        ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                    let mut pick = rng.next_u64() as u32 % total.max(1);
                    for (lo, hi) in ranges {
                        let span = *hi as u32 - *lo as u32 + 1;
                        if pick < span {
                            if let Some(c) = char::from_u32(*lo as u32 + pick) {
                                out.push(c);
                            }
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    /// Size specification: a fixed size or a range of sizes.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty collection size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.below(self.end() - self.start() + 1)
        }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    pub struct BTreeMapStrategy<K, V, Z> {
        key: K,
        value: V,
        size: Z,
    }

    impl<K, V, Z> Strategy for BTreeMapStrategy<K, V, Z>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        Z: SizeRange,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::BTreeMap::new();
            // Duplicate keys collapse; best effort toward the target size.
            for _ in 0..n * 2 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    pub fn btree_map<K, V, Z>(key: K, value: V, size: Z) -> BTreeMapStrategy<K, V, Z>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        Z: SizeRange,
    {
        BTreeMapStrategy { key, value, size }
    }

    pub struct HashMapStrategy<K, V, Z> {
        key: K,
        value: V,
        size: Z,
    }

    impl<K, V, Z> Strategy for HashMapStrategy<K, V, Z>
    where
        K: Strategy,
        K::Value: Eq + std::hash::Hash,
        V: Strategy,
        Z: SizeRange,
    {
        type Value = std::collections::HashMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::HashMap::new();
            for _ in 0..n * 2 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    pub fn hash_map<K, V, Z>(key: K, value: V, size: Z) -> HashMapStrategy<K, V, Z>
    where
        K: Strategy,
        K::Value: Eq + std::hash::Hash,
        V: Strategy,
        Z: SizeRange,
    {
        HashMapStrategy { key, value, size }
    }

    pub struct HashSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Eq + std::hash::Hash,
        Z: SizeRange,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::HashSet::new();
            for _ in 0..n * 2 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn hash_set<S, Z>(element: S, size: Z) -> HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Eq + std::hash::Hash,
        Z: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeRange,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            for _ in 0..n * 2 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Failure type carried by `prop_assert*` (mirrors proptest's
/// `TestCaseError` in spirit: a message plus a replay seed slot).
#[derive(Debug)]
pub struct TestCaseError(pub String);

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `left == right` at {}:{}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `left != right` at {}:{}\n  both: {:?}",
                file!(),
                line!(),
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __seed0 = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::cases() {
                    let __seed = __seed0 ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut __rng = $crate::TestRng::from_seed(__seed);
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest case {} (seed {:#x}) failed: {}",
                            __case, __seed, e.0
                        );
                    }
                }
            }
        )*
    };
}
