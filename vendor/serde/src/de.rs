//! Deserialization half of the serde data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Trait for deserialization errors.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;

    fn invalid_type(unexp: &str, exp: &dyn Expected) -> Self {
        Error::custom(format_args!("invalid type: {unexp}, expected {exp}"))
    }

    fn invalid_value(unexp: &str, exp: &dyn Expected) -> Self {
        Error::custom(format_args!("invalid value: {unexp}, expected {exp}"))
    }

    fn invalid_length(len: usize, exp: &dyn Expected) -> Self {
        Error::custom(format_args!("invalid length {len}, expected {exp}"))
    }

    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Error::custom(format_args!("unknown variant `{variant}`, expected one of {expected:?}"))
    }

    fn missing_field(field: &'static str) -> Self {
        Error::custom(format_args!("missing field `{field}`"))
    }

    fn duplicate_field(field: &'static str) -> Self {
        Error::custom(format_args!("duplicate field `{field}`"))
    }
}

/// What a `Visitor` expected, for error messages.
pub trait Expected {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, T: Visitor<'de>> Expected for T {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl<'a> Display for dyn Expected + 'a {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self, f)
    }
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// Stateful variant of `Deserialize`.
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A serde data format that can deserialize any `Deserialize` value.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

macro_rules! visit_default {
    ($method:ident, $ty:ty, $what:expr) => {
        fn $method<E: Error>(self, _v: $ty) -> Result<Self::Value, E> {
            Err(E::invalid_type($what, &self))
        }
    };
}

/// Walks the serde data model, building a `Value`.
pub trait Visitor<'de>: Sized {
    type Value;

    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    visit_default!(visit_bool, bool, "boolean");

    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    visit_default!(visit_i64, i64, "integer");
    visit_default!(visit_i128, i128, "128-bit integer");

    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    visit_default!(visit_u64, u64, "unsigned integer");
    visit_default!(visit_u128, u128, "128-bit unsigned integer");

    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    visit_default!(visit_f64, f64, "float");

    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }

    visit_default!(visit_str, &str, "string");

    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    visit_default!(visit_bytes, &[u8], "bytes");

    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("Option::None", &self))
    }

    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(D::Error::invalid_type("Option::Some", &self))
    }

    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("unit", &self))
    }

    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(D::Error::invalid_type("newtype struct", &self))
    }

    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type("sequence", &self))
    }

    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type("map", &self))
    }

    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type("enum", &self))
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of the enum variant selected by `EnumAccess`.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a `Deserializer` (used by data formats
/// to hand variant indices to a `DeserializeSeed`).
pub trait IntoDeserializer<'de, E: Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

pub mod value {
    //! Deserializers that wrap plain Rust values.

    use super::*;

    macro_rules! primitive_deserializer {
        ($name:ident, $ty:ty, $visit:ident, $from:ty) => {
            pub struct $name<E> {
                value: $ty,
                marker: PhantomData<E>,
            }

            impl<E> $name<E> {
                pub fn new(value: $ty) -> Self {
                    $name { value, marker: PhantomData }
                }
            }

            impl<'de, E: Error> Deserializer<'de> for $name<E> {
                type Error = E;

                fn deserialize_any<V: Visitor<'de>>(
                    self,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    visitor.$visit(self.value)
                }

                serde_forward_to_any! {
                    deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
                    deserialize_i64 deserialize_i128 deserialize_u8 deserialize_u16
                    deserialize_u32 deserialize_u64 deserialize_u128 deserialize_f32
                    deserialize_f64 deserialize_char deserialize_str deserialize_string
                    deserialize_bytes deserialize_byte_buf deserialize_option
                    deserialize_unit deserialize_seq deserialize_map
                    deserialize_identifier deserialize_ignored_any
                }

                fn deserialize_unit_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }

                fn deserialize_newtype_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }

                fn deserialize_tuple<V: Visitor<'de>>(
                    self,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }

                fn deserialize_tuple_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }

                fn deserialize_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _fields: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }

                fn deserialize_enum<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _variants: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }
            }

            impl<'de, E: Error> IntoDeserializer<'de, E> for $from {
                type Deserializer = $name<E>;
                fn into_deserializer(self) -> $name<E> {
                    $name::new(self)
                }
            }
        };
    }

    macro_rules! serde_forward_to_any {
        ($($method:ident)*) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }
            )*
        };
    }

    primitive_deserializer!(U8Deserializer, u8, visit_u8, u8);
    primitive_deserializer!(U16Deserializer, u16, visit_u16, u16);
    primitive_deserializer!(U32Deserializer, u32, visit_u32, u32);
    primitive_deserializer!(U64Deserializer, u64, visit_u64, u64);
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! int_deserialize {
    ($ty:ident, $deserialize:ident) => {
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimVisitor;
                impl Visitor<'_> for PrimVisitor {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, stringify!($ty))
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!("{v} out of range for {}", stringify!($ty)))
                        })
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!("{v} out of range for {}", stringify!($ty)))
                        })
                    }
                    fn visit_i128<E: Error>(self, v: i128) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!("{v} out of range for {}", stringify!($ty)))
                        })
                    }
                    fn visit_u128<E: Error>(self, v: u128) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!("{v} out of range for {}", stringify!($ty)))
                        })
                    }
                }
                deserializer.$deserialize(PrimVisitor)
            }
        }
    };
}

int_deserialize!(i8, deserialize_i8);
int_deserialize!(i16, deserialize_i16);
int_deserialize!(i32, deserialize_i32);
int_deserialize!(i64, deserialize_i64);
int_deserialize!(i128, deserialize_i128);
int_deserialize!(u8, deserialize_u8);
int_deserialize!(u16, deserialize_u16);
int_deserialize!(u32, deserialize_u32);
int_deserialize!(u64, deserialize_u64);
int_deserialize!(u128, deserialize_u128);

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| D::Error::custom("u64 out of range for usize"))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| D::Error::custom("i64 out of range for isize"))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BoolVisitor;
        impl Visitor<'_> for BoolVisitor {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a boolean")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(BoolVisitor)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct F32Visitor;
        impl Visitor<'_> for F32Visitor {
            type Value = f32;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an f32")
            }
            fn visit_f32<E: Error>(self, v: f32) -> Result<f32, E> {
                Ok(v)
            }
            fn visit_f64<E: Error>(self, v: f64) -> Result<f32, E> {
                Ok(v as f32)
            }
        }
        deserializer.deserialize_f32(F32Visitor)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct F64Visitor;
        impl Visitor<'_> for F64Visitor {
            type Value = f64;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an f64")
            }
            fn visit_f64<E: Error>(self, v: f64) -> Result<f64, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_f64(F64Visitor)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;
        impl Visitor<'_> for CharVisitor {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a char")
            }
            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::invalid_value(v, &self)),
                }
            }
        }
        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl Visitor<'_> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de: 'a, 'a> Deserialize<'de> for &'a str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StrVisitor;
        impl<'de> Visitor<'de> for StrVisitor {
            type Value = &'de str;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a borrowed string")
            }
            fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<&'de str, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_str(StrVisitor)
    }
}

impl<'de: 'a, 'a> Deserialize<'de> for &'a [u8] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BytesVisitor;
        impl<'de> Visitor<'de> for BytesVisitor {
            type Value = &'de [u8];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "borrowed bytes")
            }
            fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<&'de [u8], E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bytes(BytesVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl Visitor<'_> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an option")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de> Deserialize<'de> for std::sync::Arc<str> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(std::sync::Arc::from)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(Into::into)
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for MapVisitor<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(0, H::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

impl<'de, T, H> Deserialize<'de> for std::collections::HashSet<T, H>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

macro_rules! tuple_deserialize {
    ($($len:expr => ($($ty:ident)+),)*) => {
        $(
            impl<'de, $($ty: Deserialize<'de>),+> Deserialize<'de> for ($($ty,)+) {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct TupleVisitor<$($ty),+>(PhantomData<($($ty,)+)>);
                    impl<'de, $($ty: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($ty),+> {
                        type Value = ($($ty,)+);
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            write!(f, "a tuple of {} elements", $len)
                        }
                        #[allow(non_snake_case)]
                        fn visit_seq<A: SeqAccess<'de>>(
                            self,
                            mut seq: A,
                        ) -> Result<Self::Value, A::Error> {
                            let mut count = 0usize;
                            $(
                                let $ty: $ty = match seq.next_element()? {
                                    Some(v) => { count += 1; v }
                                    None => return Err(A::Error::invalid_length(count, &self)),
                                };
                            )+
                            let _ = count;
                            Ok(($($ty,)+))
                        }
                    }
                    deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
                }
            }
        )*
    };
}

tuple_deserialize! {
    1 => (T0),
    2 => (T0 T1),
    3 => (T0 T1 T2),
    4 => (T0 T1 T2 T3),
    5 => (T0 T1 T2 T3 T4),
    6 => (T0 T1 T2 T3 T4 T5),
    7 => (T0 T1 T2 T3 T4 T5 T6),
    8 => (T0 T1 T2 T3 T4 T5 T6 T7),
}
