//! Vendored minimal `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the shapes this workspace
//! uses: named/tuple/unit structs, enums with unit/newtype/tuple/struct
//! variants, and at most lifetime generics (no type parameters). Parsing is
//! done directly over `proc_macro::TokenTree` (no `syn`/`quote` — the build
//! environment has no network access), and code is generated as strings and
//! re-parsed into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    lifetimes: Vec<String>,
}

struct Parsed {
    input: Input,
    data: Data,
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advance past any leading `#[...]` attributes (incl. doc comments).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Bracket {
                    i += 1;
                    continue;
                }
            }
        }
        panic!("serde_derive: malformed attribute");
    }
    i
}

/// Advance past `pub` / `pub(...)`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        assert!(is_punct(&tokens[i], ':'), "serde_derive: expected `:` after field name");
        i += 1;
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0usize;
    let mut seg_nonempty = false;
    let mut angle = 0i32;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip attribute.
                i = skip_attrs(&tokens, i);
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                seg_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                seg_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if seg_nonempty {
                    count += 1;
                }
                seg_nonempty = false;
            }
            _ => seg_nonempty = true,
        }
        i += 1;
    }
    if seg_nonempty {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let mut fields = Fields::Unit;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                fields = match g.delimiter() {
                    Delimiter::Brace => Fields::Named(parse_named_fields(g.stream())),
                    Delimiter::Parenthesis => Fields::Tuple(count_tuple_fields(g.stream())),
                    _ => panic!("serde_derive: unexpected variant delimiter"),
                };
                i += 1;
            }
        }
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // the comma
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!("serde_derive: expected `struct` or `enum`, found {}", tokens[i]);
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;

    // Generics: lifetimes only.
    let mut lifetimes = Vec::new();
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        i += 1;
        let mut depth = 1i32;
        let mut after_quote = false;
        while i < tokens.len() && depth > 0 {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == '\'' => after_quote = true,
                TokenTree::Ident(id) => {
                    if after_quote {
                        let lt = id.to_string();
                        if lt != "static" && !lifetimes.contains(&lt) {
                            lifetimes.push(lt);
                        }
                        after_quote = false;
                    } else if depth == 1 {
                        panic!(
                            "serde_derive: generic type parameters are not supported \
                             (found `{id}` on `{name}`)"
                        );
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    if i < tokens.len() && is_ident(&tokens[i], "where") {
        panic!("serde_derive: `where` clauses are not supported (on `{name}`)");
    }

    let data = if is_enum {
        let TokenTree::Group(g) = &tokens[i] else {
            panic!("serde_derive: expected enum body");
        };
        Data::Enum(parse_variants(g.stream()))
    } else if i >= tokens.len() || is_punct(&tokens[i], ';') {
        Data::Struct(Fields::Unit)
    } else {
        let TokenTree::Group(g) = &tokens[i] else {
            panic!("serde_derive: expected struct body");
        };
        match g.delimiter() {
            Delimiter::Brace => Data::Struct(Fields::Named(parse_named_fields(g.stream()))),
            Delimiter::Parenthesis => Data::Struct(Fields::Tuple(count_tuple_fields(g.stream()))),
            _ => panic!("serde_derive: unexpected struct delimiter"),
        }
    };

    Parsed { input: Input { name, lifetimes }, data }
}

// ---------------------------------------------------------------------------
// Shared codegen helpers
// ---------------------------------------------------------------------------

impl Input {
    /// `<'a, 'b>` or empty.
    fn ty_args(&self) -> String {
        if self.lifetimes.is_empty() {
            String::new()
        } else {
            format!(
                "<{}>",
                self.lifetimes.iter().map(|l| format!("'{l}")).collect::<Vec<_>>().join(", ")
            )
        }
    }

    /// The full type, e.g. `Borrowed<'a>`.
    fn full_ty(&self) -> String {
        format!("{}{}", self.name, self.ty_args())
    }

    /// Lifetime list for an impl header, e.g. `'a, 'b` (no angle brackets).
    fn lt_list(&self) -> String {
        self.lifetimes.iter().map(|l| format!("'{l}")).collect::<Vec<_>>().join(", ")
    }

    /// `where 'de: 'a, 'de: 'b` or empty.
    fn de_where(&self) -> String {
        if self.lifetimes.is_empty() {
            String::new()
        } else {
            let bounds: Vec<String> = self.lifetimes.iter().map(|l| format!("'de: '{l}")).collect();
            format!("where {}", bounds.join(", "))
        }
    }

    /// Declaration + constructor expression for a visitor struct that can
    /// name the input's lifetimes.
    fn visitor(&self, vname: &str) -> (String, String, String) {
        if self.lifetimes.is_empty() {
            (format!("struct {vname};"), vname.to_string(), String::new())
        } else {
            let phantoms: Vec<String> =
                self.lifetimes.iter().map(|l| format!("&'{l} ()")).collect();
            (
                format!(
                    "struct {vname}{}(::core::marker::PhantomData<({})>);",
                    self.ty_args(),
                    phantoms.join(", ")
                ),
                format!("{vname}(::core::marker::PhantomData)"),
                self.ty_args(),
            )
        }
    }
}

/// `visit_seq` body that builds `ctor_prefix { f1: ..., f2: ... }`.
fn named_visit_seq(ctor: &str, fields: &[String]) -> String {
    let mut body = String::new();
    for f in fields {
        body.push_str(&format!(
            "{f}: match ::serde::de::SeqAccess::next_element(&mut __seq)? {{ \
                 ::core::option::Option::Some(__v) => __v, \
                 ::core::option::Option::None => return ::core::result::Result::Err(\
                     <__A::Error as ::serde::de::Error>::missing_field(\"{f}\")), \
             }},\n"
        ));
    }
    format!(
        "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
             -> ::core::result::Result<Self::Value, __A::Error> {{\n\
             ::core::result::Result::Ok({ctor} {{\n{body}\n}})\n\
         }}"
    )
}

/// `visit_seq` body that builds `ctor_prefix(__f0, __f1, ...)`.
fn tuple_visit_seq(ctor: &str, len: usize) -> String {
    let mut body = String::new();
    let mut args = Vec::new();
    for i in 0..len {
        body.push_str(&format!(
            "let __f{i} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{ \
                 ::core::option::Option::Some(__v) => __v, \
                 ::core::option::Option::None => return ::core::result::Result::Err(\
                     <__A::Error as ::serde::de::Error>::invalid_length({i}, &self)), \
             }};\n"
        ));
        args.push(format!("__f{i}"));
    }
    format!(
        "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
             -> ::core::result::Result<Self::Value, __A::Error> {{\n\
             {body}\n::core::result::Result::Ok({ctor}({args}))\n\
         }}",
        args = args.join(", ")
    )
}

fn field_name_list(fields: &[String]) -> String {
    fields.iter().map(|f| format!("\"{f}\"")).collect::<Vec<_>>().join(", ")
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let inp = &parsed.input;
    let name = &inp.name;
    let full = inp.full_ty();
    let impl_generics =
        if inp.lifetimes.is_empty() { String::new() } else { format!("<{}>", inp.lt_list()) };

    let body = match &parsed.data {
        Data::Struct(Fields::Unit) => {
            format!("::serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Data::Struct(Fields::Named(fields)) => {
            let mut b = format!(
                "let mut __st = ::serde::ser::Serializer::serialize_struct(\
                     __serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                b.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(\
                         &mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            b.push_str("::serde::ser::SerializeStruct::end(__st)");
            b
        }
        Data::Struct(Fields::Tuple(1)) => format!(
            "::serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Data::Struct(Fields::Tuple(n)) => {
            let mut b = format!(
                "let mut __st = ::serde::ser::Serializer::serialize_tuple_struct(\
                     __serializer, \"{name}\", {n})?;\n"
            );
            for i in 0..*n {
                b.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{i})?;\n"
                ));
            }
            b.push_str("::serde::ser::SerializeTupleStruct::end(__st)");
            b
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => \
                             ::serde::ser::Serializer::serialize_newtype_variant(\
                                 __serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({binds}) => {{\n\
                                 let mut __st = \
                                     ::serde::ser::Serializer::serialize_tuple_variant(\
                                         __serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                            binds = binds.join(", ")
                        );
                        for b in &binds {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(\
                                     &mut __st, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(__st)\n}\n");
                        arms.push_str(&arm);
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut arm = format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                                 let mut __st = \
                                     ::serde::ser::Serializer::serialize_struct_variant(\
                                         __serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(\
                                     &mut __st, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__st)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };

    let out = format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::ser::Serialize for {full} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    out.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let inp = &parsed.input;
    let name = &inp.name;
    let full = inp.full_ty();
    let de_where = inp.de_where();
    let lt = inp.lt_list();
    let impl_lts = if lt.is_empty() { "'de".to_string() } else { format!("'de, {lt}") };
    let (vis_decl, vis_ctor, vis_ty) = inp.visitor("__SerdeVisitor");

    let expecting = format!(
        "fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{ \
             ::core::write!(__f, \"{name}\") \
         }}"
    );

    let (visit_body, driver) = match &parsed.data {
        Data::Struct(Fields::Unit) => (
            format!(
                "fn visit_unit<__E: ::serde::de::Error>(self) \
                     -> ::core::result::Result<Self::Value, __E> {{ \
                     ::core::result::Result::Ok({name}) \
                 }}"
            ),
            format!(
                "::serde::de::Deserializer::deserialize_unit_struct(\
                     __deserializer, \"{name}\", {vis_ctor})"
            ),
        ),
        Data::Struct(Fields::Named(fields)) => (
            named_visit_seq(name, fields),
            format!(
                "::serde::de::Deserializer::deserialize_struct(\
                     __deserializer, \"{name}\", &[{}], {vis_ctor})",
                field_name_list(fields)
            ),
        ),
        Data::Struct(Fields::Tuple(1)) => (
            format!(
                "fn visit_newtype_struct<__D2: ::serde::de::Deserializer<'de>>(\
                     self, __d: __D2) -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                     ::core::result::Result::Ok({name}(\
                         ::serde::de::Deserialize::deserialize(__d)?))\n\
                 }}\n{}",
                tuple_visit_seq(name, 1)
            ),
            format!(
                "::serde::de::Deserializer::deserialize_newtype_struct(\
                     __deserializer, \"{name}\", {vis_ctor})"
            ),
        ),
        Data::Struct(Fields::Tuple(n)) => (
            tuple_visit_seq(name, *n),
            format!(
                "::serde::de::Deserializer::deserialize_tuple_struct(\
                     __deserializer, \"{name}\", {n}, {vis_ctor})"
            ),
        ),
        Data::Enum(variants) => {
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{idx}u32 => {{ \
                             ::serde::de::VariantAccess::unit_variant(__variant)?; \
                             ::core::result::Result::Ok({name}::{vname}) \
                         }}\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{idx}u32 => ::core::result::Result::Ok({name}::{vname}(\
                             ::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let (vd, vc, vt) = inp.visitor("__VariantVisitor");
                        let seq = tuple_visit_seq(&format!("{name}::{vname}"), *n);
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n\
                                 {vd}\n\
                                 impl<{impl_lts}> ::serde::de::Visitor<'de> \
                                     for __VariantVisitor{vt} {de_where} {{\n\
                                     type Value = {full};\n{expecting}\n{seq}\n\
                                 }}\n\
                                 ::serde::de::VariantAccess::tuple_variant(__variant, {n}, {vc})\n\
                             }}\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let (vd, vc, vt) = inp.visitor("__VariantVisitor");
                        let seq = named_visit_seq(&format!("{name}::{vname}"), fields);
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n\
                                 {vd}\n\
                                 impl<{impl_lts}> ::serde::de::Visitor<'de> \
                                     for __VariantVisitor{vt} {de_where} {{\n\
                                     type Value = {full};\n{expecting}\n{seq}\n\
                                 }}\n\
                                 ::serde::de::VariantAccess::struct_variant(\
                                     __variant, &[{fields}], {vc})\n\
                             }}\n",
                            fields = field_name_list(fields)
                        ));
                    }
                }
            }
            (
                format!(
                    "fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) \
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         let (__idx, __variant) = \
                             ::serde::de::EnumAccess::variant::<u32>(__data)?;\n\
                         match __idx {{\n{arms}\n\
                             _ => ::core::result::Result::Err(\
                                 <__A::Error as ::serde::de::Error>::custom(\
                                     \"variant index out of range for {name}\")),\n\
                         }}\n\
                     }}"
                ),
                format!(
                    "::serde::de::Deserializer::deserialize_enum(\
                         __deserializer, \"{name}\", &[{}], {vis_ctor})",
                    variant_names.join(", ")
                ),
            )
        }
    };

    let out = format!(
        "#[automatically_derived]\n\
         impl<{impl_lts}> ::serde::de::Deserialize<'de> for {full} {de_where} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {vis_decl}\n\
                 impl<{impl_lts}> ::serde::de::Visitor<'de> for __SerdeVisitor{vis_ty} \
                     {de_where} {{\n\
                     type Value = {full};\n\
                     {expecting}\n\
                     {visit_body}\n\
                 }}\n\
                 {driver}\n\
             }}\n\
         }}\n"
    );
    out.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}
